// Package primitives implements the MPC building blocks of the paper's
// Section 2 on top of the internal/mpc simulator:
//
//   - Reduce-by-key: associative aggregation of (key, value) pairs.
//   - Degree statistics: per-value tuple counts of a relation attribute.
//   - Semi-join, and full semi-join reduction over a join tree (removal
//     of dangling tuples for acyclic queries, Yannakakis phase 1).
//   - Parallel-packing: grouping weighted values into O(W/L + p) groups
//     of weight at most L.
//   - Distributed join-size counting over a join tree — the free-connex
//     join-aggregate statistics queries the generic algorithm issues
//     (see DESIGN.md for the substitution note on [16]).
//
// Every primitive charges its communication to the supplied Group; all
// run in O(1) rounds with load O(input/p) as the paper states.
//
// All primitives satisfy the mpc package's parallel-execution contract:
// routing closures are pure (the ReduceByKey fan-in destination depends
// only on the tuple's key and source index), local transforms touch no
// shared state, and Pack sorts each server's rows by value so its group
// assignment is independent of input order.
package primitives

import (
	"hash/fnv"
	"sort"

	"coverpack/internal/mpc"
	"coverpack/internal/relation"
)

// ReduceByKey sums the value column per distinct key. The input is a
// distributed relation whose schema contains the key attributes and the
// value attribute; the output holds one (key..., sum) row per distinct
// key, hash-partitioned by key.
//
// Servers pre-aggregate locally, then combine in two exchanges: partial
// rows of a key first fan in to a block of ~√p servers tied to the key,
// and the block's partials meet at the key's home server. A key held by
// all p servers therefore costs O(√p) per round instead of O(p) — the
// aggregation-tree trick that keeps the O(1)-round reduce-by-key load
// at Õ(input/p + √p).
func ReduceByKey(g *mpc.Group, d *mpc.DistRelation, keyAttrs []int, valAttr int) *mpc.DistRelation {
	outSchema := relation.NewSchema(append(append([]int(nil), keyAttrs...), valAttr)...)
	agg := func(dd *mpc.DistRelation) *mpc.DistRelation {
		return g.Local(dd, func(_ int, f *relation.Relation) *relation.Relation {
			return localAggregate(f, keyAttrs, valAttr, outSchema)
		})
	}
	var out *mpc.DistRelation
	g.Span("reduce-by-key", func() {
		pre := agg(d)
		p := g.Size()
		if p >= 4 {
			c := 1
			for c*c < p {
				c++
			}
			mid := g.Route(pre, func(src int, t relation.Tuple) []int {
				f := pre.Frags[src]
				base := int(keyHash(f.KeyOn(t, keyAttrs)) % uint64(p))
				return []int{(base + src%c) % p}
			})
			pre = agg(mid)
		}
		parted := g.HashPartition(pre, keyAttrs)
		out = agg(parted)
	})
	return out
}

// keyHash is a deterministic FNV-1a hash of an encoded key.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// localAggregate sums valAttr per key group of f, producing rows under
// outSchema (keys ∪ {valAttr}).
func localAggregate(f *relation.Relation, keyAttrs []int, valAttr int, outSchema relation.Schema) *relation.Relation {
	sums := make(map[string]int64)
	reps := make(map[string]relation.Tuple)
	var order []string
	for _, t := range f.Tuples() {
		k := f.KeyOn(t, keyAttrs)
		if _, ok := sums[k]; !ok {
			order = append(order, k)
			reps[k] = t
		}
		sums[k] += f.Get(t, valAttr)
	}
	out := relation.New(outSchema)
	for _, k := range order {
		rep := reps[k]
		nt := make(relation.Tuple, outSchema.Len())
		for i, a := range outSchema.Attrs() {
			if a == valAttr {
				nt[i] = sums[k]
			} else {
				nt[i] = f.Get(rep, a)
			}
		}
		out.Add(nt)
	}
	return out
}

// Degrees computes, for each distinct value of attr in d, its degree
// (number of tuples holding it), as a distributed relation with schema
// (attr, countAttr), hash-partitioned by attr. This is the paper's
// reduce-by-key application to degree statistics.
func Degrees(g *mpc.Group, d *mpc.DistRelation, attr, countAttr int) *mpc.DistRelation {
	withOnes := g.Local(d, func(_ int, f *relation.Relation) *relation.Relation {
		out := relation.New(relation.NewSchema(attr, countAttr))
		ap := out.Schema().Pos(attr)
		cp := out.Schema().Pos(countAttr)
		for _, t := range f.Tuples() {
			nt := make(relation.Tuple, 2)
			nt[ap] = f.Get(t, attr)
			nt[cp] = 1
			out.Add(nt)
		}
		return out
	})
	return ReduceByKey(g, withOnes, []int{attr}, countAttr)
}

// SemiJoin filters r to the tuples with a partner in s on their common
// attributes: both sides are hash-partitioned on the common attributes
// (one round each), then filtered locally. The result keeps r's schema,
// partitioned by the common attributes.
func SemiJoin(g *mpc.Group, r, s *mpc.DistRelation) *mpc.DistRelation {
	common := r.Schema.Common(s.Schema)
	if len(common) == 0 {
		if s.Len() == 0 {
			return mpc.NewDist(r.Schema, g.Size())
		}
		return r
	}
	rp := g.HashPartition(r, common)
	sp := g.HashPartition(s, common)
	out := mpc.NewDist(r.Schema, g.Size())
	g.Fork(len(rp.Frags), func(i int) {
		out.Frags[i] = rp.Frags[i].SemiJoin(sp.Frags[i])
	})
	return out
}

// SemiJoinReduceTree removes all dangling tuples of an acyclic instance
// with two sweeps of distributed semi-joins over the join tree (leaf to
// root, then root to leaf), as the paper's Section 2 notes following
// Yannakakis. children[e] lists the join-tree children of edge e;
// roots are the tree roots. O(1) rounds for constant-size queries.
func SemiJoinReduceTree(g *mpc.Group, rels []*mpc.DistRelation, children [][]int, roots []int) []*mpc.DistRelation {
	out := make([]*mpc.DistRelation, len(rels))
	copy(out, rels)
	g.Span("semi-join reduce", func() {
		var up func(e int)
		up = func(e int) {
			for _, c := range children[e] {
				up(c)
				out[e] = SemiJoin(g, out[e], out[c])
			}
		}
		var down func(e int)
		down = func(e int) {
			for _, c := range children[e] {
				out[c] = SemiJoin(g, out[c], out[e])
				down(c)
			}
		}
		for _, r := range roots {
			up(r)
			down(r)
		}
	})
	return out
}

// PackResult is the output of Pack: an assignment of each input value to
// a group id, plus the number of groups.
type PackResult struct {
	// Assign maps each value to its group in [0, NumGroups).
	Assign *mpc.DistRelation // schema (valueAttr, groupAttr)
	// NumGroups is the total number of groups created.
	NumGroups int
}

// Pack implements the parallel-packing primitive: given one (value,
// weight) row per value with every weight ≤ capacity, it groups values
// so each group's total weight is at most capacity, using next-fit
// locally per server plus one control round to allocate disjoint global
// group ids. At most 2·W/capacity + p groups are created (W the total
// weight) — the paper's variant guarantees all but one group at least
// half full; per-server next-fit relaxes that to all but p groups,
// which keeps every server-count bound in Theorems 1–5 intact (see
// DESIGN.md).
func Pack(g *mpc.Group, weights *mpc.DistRelation, valueAttr, weightAttr, groupAttr int, capacity int64) PackResult {
	if capacity <= 0 {
		panic("primitives: Pack capacity must be positive")
	}
	outSchema := relation.NewSchema(valueAttr, groupAttr)
	binsPerServer := make([]int, len(weights.Frags))
	// Pass 1: local next-fit to count bins per server.
	type localAssign struct {
		value relation.Value
		bin   int
	}
	local := make([][]localAssign, len(weights.Frags))
	for s, f := range weights.Frags {
		// Deterministic order: sort rows by value.
		rows := append([]relation.Tuple(nil), f.Tuples()...)
		vp := f.Schema().Pos(valueAttr)
		wp := f.Schema().Pos(weightAttr)
		sort.Slice(rows, func(i, j int) bool { return rows[i][vp] < rows[j][vp] })
		bin, binLoad := 0, int64(0)
		opened := false
		for _, t := range rows {
			w := t[wp]
			if w > capacity {
				panic("primitives: Pack weight exceeds capacity")
			}
			if !opened {
				opened = true
			} else if binLoad+w > capacity {
				bin++
				binLoad = 0
			}
			binLoad += w
			local[s] = append(local[s], localAssign{value: t[vp], bin: bin})
		}
		if opened {
			binsPerServer[s] = bin + 1
		}
	}
	// Control round: every server learns its global bin offset (one
	// integer per server).
	control := make([]int, len(weights.Frags))
	for i := range control {
		control[i] = 1
	}
	g.Span("pack", func() { g.ChargeControl(control) })
	offsets := make([]int, len(weights.Frags))
	total := 0
	for s, b := range binsPerServer {
		offsets[s] = total
		total += b
	}
	assign := mpc.NewDist(outSchema, len(weights.Frags))
	vp := outSchema.Pos(valueAttr)
	gp := outSchema.Pos(groupAttr)
	for s, as := range local {
		for _, a := range as {
			nt := make(relation.Tuple, 2)
			nt[vp] = a.value
			nt[gp] = int64(offsets[s] + a.bin)
			assign.Frags[s].Add(nt)
		}
	}
	return PackResult{Assign: assign, NumGroups: total}
}
