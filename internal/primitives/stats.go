package primitives

import (
	"coverpack/internal/hashtab"
	"coverpack/internal/mpc"
	"coverpack/internal/relation"
)

// This file implements the distributed join-size statistics the generic
// algorithm of Section 3 needs: the sizes of sub-joins |⊗(T, R, S)|,
// optionally grouped by an attribute (the heavy/light statistics of
// Step 1). The paper computes them with the free-connex join-aggregate
// algorithm of [16]; this implementation uses the equivalent
// Yannakakis-style bottom-up count DP over the join tree, built from
// ReduceByKey and hash partitioning, so every unit of communication is
// charged to the group (see the substitution table in DESIGN.md).
//
// Inputs describe one *connected component* of a join tree: children[e]
// lists tree children, root is the component's root. Relations must be
// duplicate-free (the workload generators guarantee this; semi-join
// reduction preserves it).

// weightedDP returns, for the subtree rooted at e, a distributed
// relation with schema vars(e) ∪ {weightAttr} where each tuple of R(e)
// carries the number of subtree join combinations consistent with it.
// Tuples with zero weight are dropped.
func weightedDP(g *mpc.Group, rels []*mpc.DistRelation, children [][]int, e, weightAttr int) *mpc.DistRelation {
	base := g.Local(rels[e], func(_ int, f *relation.Relation) *relation.Relation {
		outSchema := f.Schema().Union(relation.NewSchema(weightAttr))
		out := relation.New(outSchema)
		wp := outSchema.Pos(weightAttr)
		srcPos := make([]int, outSchema.Len())
		for i, a := range outSchema.Attrs() {
			if i == wp {
				srcPos[i] = -1
			} else {
				srcPos[i] = f.Schema().Pos(a)
			}
		}
		out.Grow(f.Len())
		nt := make(relation.Tuple, outSchema.Len())
		for i := 0; i < f.Len(); i++ {
			t := f.Row(i)
			for j, sp := range srcPos {
				if sp < 0 {
					nt[j] = 1
				} else {
					nt[j] = t[sp]
				}
			}
			out.Add(nt)
		}
		return out
	})
	cur := base
	for _, c := range children[e] {
		childW := weightedDP(g, rels, children, c, weightAttr)
		common := commonExcept(cur.Schema, childW.Schema, weightAttr)
		agg := ReduceByKey(g, childW, common, weightAttr)
		cur = multiplyWeights(g, cur, agg, common, weightAttr)
	}
	return cur
}

// commonExcept returns the shared attributes of two schemas, excluding
// the synthetic weight attribute.
func commonExcept(a, b relation.Schema, weightAttr int) []int {
	var out []int
	for _, x := range a.Common(b) {
		if x != weightAttr {
			out = append(out, x)
		}
	}
	return out
}

// multiplyWeights joins the per-key aggregated child weights into the
// parent's weight column: both sides are partitioned by the key, then
// each parent tuple's weight is multiplied by the matching aggregate
// (dropped when no aggregate matches — the child has no join partner).
// With an empty key (Cartesian child), the child total is broadcast.
func multiplyWeights(g *mpc.Group, parent, agg *mpc.DistRelation, key []int, weightAttr int) *mpc.DistRelation {
	wp := parent.Schema.Pos(weightAttr)
	if len(key) == 0 {
		// Cartesian component below: multiply all weights by the total.
		ba := g.Broadcast(agg)
		bwp := ba.Schema.Pos(weightAttr)
		out := mpc.NewDist(parent.Schema, g.Size())
		nt := make(relation.Tuple, parent.Schema.Len())
		for i, f := range parent.Frags {
			var total int64
			bf := ba.Frags[i]
			for j := 0; j < bf.Len(); j++ {
				total += bf.Row(j)[bwp]
			}
			nf := relation.New(parent.Schema)
			if total != 0 {
				nf.Grow(f.Len())
				for j := 0; j < f.Len(); j++ {
					copy(nt, f.Row(j))
					nt[wp] *= total
					nf.Add(nt)
				}
			}
			out.Frags[i] = nf
		}
		return out
	}
	pp := g.HashPartition(parent, key)
	ap := g.HashPartition(agg, key)
	akpos := ap.Schema.Positions(key)
	awp := ap.Schema.Pos(weightAttr)
	pkpos := pp.Schema.Positions(key)
	out := mpc.NewDist(parent.Schema, g.Size())
	nt := make(relation.Tuple, parent.Schema.Len())
	for i := range pp.Frags {
		f := pp.Frags[i]
		af := ap.Frags[i]
		// Per-key aggregate sums, keyed on the projected key columns.
		tab := hashtab.New(len(key), af.Len())
		sums := make([]int64, 0, af.Len())
		for j := 0; j < af.Len(); j++ {
			t := af.Row(j)
			e, found := tab.Insert(t, akpos)
			if !found {
				sums = append(sums, 0)
			}
			sums[e] += t[awp]
		}
		nf := relation.New(parent.Schema)
		for j := 0; j < f.Len(); j++ {
			t := f.Row(j)
			if e := tab.Find(t, pkpos); e >= 0 && sums[e] != 0 {
				copy(nt, t)
				nt[wp] *= sums[e]
				nf.Add(nt)
			}
		}
		tab.Release()
		out.Frags[i] = nf
	}
	return out
}

// JoinCount computes the exact join size of one join-tree component:
// |⋈_{e in component} R(e)|. One control round reports the per-server
// partial sums to the driver.
func JoinCount(g *mpc.Group, rels []*mpc.DistRelation, children [][]int, root, weightAttr int) int64 {
	w := weightedDP(g, rels, children, root, weightAttr)
	control := make([]int, g.Size())
	if len(control) > 0 {
		control[0] = g.Size()
	}
	g.ChargeControl(control)
	var total int64
	wp := w.Schema.Pos(weightAttr)
	for _, f := range w.Frags {
		for i := 0; i < f.Len(); i++ {
			total += f.Row(i)[wp]
		}
	}
	return total
}

// JoinCountBy computes the join size of one join-tree component grouped
// by attribute x, which must belong to the root relation's schema. The
// result has schema (x, weightAttr), hash-partitioned by x — exactly the
// Step 1 statistics of the generic algorithm ("the result is in forms
// of (t, w(t)) for each assignment t ∈ dom(x)").
func JoinCountBy(g *mpc.Group, rels []*mpc.DistRelation, children [][]int, root, x, weightAttr int) *mpc.DistRelation {
	if !rels[root].Schema.Has(x) {
		panic("primitives: JoinCountBy root relation lacks the group-by attribute")
	}
	w := weightedDP(g, rels, children, root, weightAttr)
	return ReduceByKey(g, w, []int{x}, weightAttr)
}
