package primitives

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coverpack/internal/mpc"
	"coverpack/internal/relation"
)

func randomRel(rng *rand.Rand, n int, dom int64) *relation.Relation {
	r := relation.New(relation.NewSchema(0, 1))
	for i := 0; i < n; i++ {
		r.AddValues(rng.Int63n(dom), rng.Int63n(dom))
	}
	return r
}

func TestSortGloballySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, p := range []int{1, 3, 8, 16} {
		c := mpc.NewCluster(p)
		g := c.Root()
		r := randomRel(rng, 500, 1000)
		d := g.Scatter(r)
		s := Sort(g, d, []int{0, 1})
		if !IsGloballySorted(s, []int{0, 1}) {
			t.Fatalf("p=%d: not globally sorted", p)
		}
		if s.Len() != 500 {
			t.Fatalf("p=%d: lost tuples (%d)", p, s.Len())
		}
		if !s.Collect().Equal(r) {
			t.Fatalf("p=%d: multiset changed", p)
		}
	}
}

func TestSortBalanced(t *testing.T) {
	// Uniform keys must spread roughly evenly (sample sort's point).
	rng := rand.New(rand.NewSource(9))
	c := mpc.NewCluster(8)
	g := c.Root()
	d := g.Scatter(randomRel(rng, 4000, 1_000_000))
	s := Sort(g, d, []int{0})
	if s.MaxFrag() > 4*4000/8 {
		t.Fatalf("max fragment %d far above N/p", s.MaxFrag())
	}
	st := c.Stats()
	if st.Rounds != 2 { // gather + route
		t.Fatalf("rounds = %d", st.Rounds)
	}
}

func TestSortSkewedKeys(t *testing.T) {
	// All-equal keys: everything lands on one server (range partition
	// cannot split equal keys) — the sort must still be correct.
	c := mpc.NewCluster(4)
	g := c.Root()
	r := relation.New(relation.NewSchema(0, 1))
	for i := int64(0); i < 100; i++ {
		r.AddValues(7, i)
	}
	d := g.Scatter(r)
	s := Sort(g, d, []int{0})
	if !IsGloballySorted(s, []int{0}) || s.Len() != 100 {
		t.Fatal("skewed sort broken")
	}
}

func TestSortEmpty(t *testing.T) {
	c := mpc.NewCluster(4)
	g := c.Root()
	d := g.Scatter(relation.New(relation.NewSchema(0)))
	s := Sort(g, d, []int{0})
	if s.Len() != 0 {
		t.Fatal("phantom tuples")
	}
}

func TestSortPanicsOnBadAttr(t *testing.T) {
	c := mpc.NewCluster(2)
	g := c.Root()
	d := g.Scatter(randomRel(rand.New(rand.NewSource(1)), 10, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sort(g, d, []int{99})
}

// Property: sorting preserves the multiset and produces a globally
// sorted layout for arbitrary seeds, sizes and server counts.
func TestPropertySortCorrect(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(12)
		n := rng.Intn(300)
		dom := int64(1 + rng.Intn(50))
		c := mpc.NewCluster(p)
		g := c.Root()
		r := randomRel(rng, n, dom)
		s := Sort(g, g.Scatter(r), []int{0, 1})
		return IsGloballySorted(s, []int{0, 1}) && s.Collect().Equal(r)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
