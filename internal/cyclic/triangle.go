// Package cyclic implements the multi-round worst-case optimal
// algorithm for the triangle join — the binary-relation-join cell of
// Table 1 ([18, 19, 25]) that the paper's acyclic algorithm does not
// cover. Load: Õ(N/p^{1/ρ*}) = Õ(N/p^{2/3}).
//
// The algorithm is the classic heavy/light decomposition: a value is
// heavy in an attribute when its degree exceeds δ = N/p^{1/3}; join
// results are stratified by which of their three attribute values are
// heavy. The all-light stratum runs one-round HyperCube with τ*-shares
// (degree-bounded values hash evenly, giving load ~N/p^{2/3}); every
// stratum with a heavy attribute h is partitioned by h's ≤ 3·p^{1/3}
// heavy values, and each residual query — the triangle minus one vertex,
// a path join, hence acyclic — is solved by the multi-round algorithm of
// internal/core on its own server group.
package cyclic

import (
	"fmt"
	"math"
	"sort"

	"coverpack/internal/core"
	"coverpack/internal/hypercube"
	"coverpack/internal/hypergraph"
	"coverpack/internal/mpc"
	"coverpack/internal/primitives"
	"coverpack/internal/relation"
)

// Result reports one execution.
type Result struct {
	// Emitted is the number of triangles emitted (each exactly once).
	Emitted int64
	// Threshold is the heavy-degree cutoff δ used.
	Threshold int64
	// HeavyBranches counts the residual acyclic subqueries executed.
	HeavyBranches int
}

// RunTriangle executes the multi-round triangle algorithm. The query
// must be a 3-cycle of binary relations (hypergraph.TriangleJoin shape,
// any attribute/relation names).
func RunTriangle(g *mpc.Group, in *relation.Instance) (*Result, error) {
	q := in.Query
	attrs, err := triangleShape(q)
	if err != nil {
		return nil, err
	}
	n := in.N()
	p := g.Size()
	delta := int64(float64(n) / math.Cbrt(float64(p)))
	if delta < 1 {
		delta = 1
	}

	// Dedup and scatter each relation once up front: every edge is
	// visited twice by the statistics loop (once per incident attribute)
	// and eight more times by the stratification loop, and both the
	// dedup and the initial placement are identical each time.
	dedup := make([]*relation.Relation, q.NumEdges())
	scattered := make([]*mpc.DistRelation, q.NumEdges())
	for e := 0; e < q.NumEdges(); e++ {
		dedup[e] = in.Rel(e).DedupPar(g)
		scattered[e] = g.Scatter(dedup[e])
	}

	// Heavy values per attribute: degree > δ in either incident
	// relation (Degrees + small gather, both charged).
	cntAttr := q.NumAttrs() + 1
	heavy := make(map[int]map[relation.Value]bool, 3)
	g.Span("statistics", func() {
		for _, a := range attrs {
			heavy[a] = make(map[relation.Value]bool)
			for _, e := range q.EdgesWith(a).Edges() {
				degs := primitives.Degrees(g, scattered[e], a, cntAttr)
				rows := g.Gather(primitives.HeavyFilter(g, degs, cntAttr, delta))
				ap := rows.Schema().Pos(a)
				for i := 0; i < rows.Len(); i++ {
					heavy[a][rows.Row(i)[ap]] = true
				}
			}
		}
	})

	// Stratify by the heavy pattern over (attrs[0], attrs[1], attrs[2]).
	pattern := func(r *relation.Relation, t relation.Tuple) (mask uint8) {
		for i, a := range attrs {
			if r.Schema().Has(a) && heavy[a][r.Get(t, a)] {
				mask |= 1 << uint(i)
			}
		}
		return
	}
	edgeMask := func(e int) (m uint8) {
		for i, a := range attrs {
			if q.EdgeVars(e).Contains(a) {
				m |= 1 << uint(i)
			}
		}
		return
	}

	res := &Result{Threshold: delta}
	var branches []mpc.Branch
	var emits []int64
	addBranch := func(servers int, run func(sub *mpc.Group) (int64, error)) *error {
		idx := len(emits)
		emits = append(emits, 0)
		errSlot := new(error)
		branches = append(branches, mpc.Branch{
			Servers: servers,
			Run: func(sub *mpc.Group) {
				emits[idx], *errSlot = run(sub)
			},
		})
		return errSlot
	}
	var errSlots []*error

	for mask := uint8(0); mask < 8; mask++ {
		// Stratum instance: tuples whose heavy pattern agrees with the
		// mask on the relation's attributes.
		strat := relation.NewInstance(q)
		empty := false
		for e := 0; e < q.NumEdges(); e++ {
			em := edgeMask(e)
			src := dedup[e]
			dst := strat.Rel(e)
			for i := 0; i < src.Len(); i++ {
				if t := src.Row(i); pattern(src, t) == mask&em {
					dst.Add(t)
				}
			}
			if dst.Len() == 0 {
				empty = true
				break
			}
		}
		if empty {
			continue
		}
		if mask == 0 {
			// All-light: one-round HyperCube with τ*-shares; light
			// degrees are ≤ δ, so hashing balances and the load is
			// ~N/p^{2/3}.
			strat := strat
			errSlots = append(errSlots, addBranch(p, func(sub *mpc.Group) (int64, error) {
				var r *hypercube.Result
				var err error
				sub.Span("light stratum", func() { r, err = hypercube.Run(sub, strat) })
				if err != nil {
					return 0, err
				}
				return r.Emitted, nil
			}))
			continue
		}
		// Heavy stratum: split on the lowest heavy attribute h in the
		// mask; each heavy value of h spawns the residual path query.
		var h int = -1
		for i, a := range attrs {
			if mask&(1<<uint(i)) != 0 {
				h = a
				break
			}
		}
		vals := heavyValuesIn(strat, q, h)
		if len(vals) == 0 {
			continue
		}
		perBranch := p / len(vals)
		if perBranch < 1 {
			perBranch = 1
		}
		for _, v := range vals {
			sx, err := residualInstance(strat, h, v)
			if err != nil {
				return nil, err
			}
			if sx == nil {
				continue
			}
			res.HeavyBranches++
			branchIn := sx
			errSlots = append(errSlots, addBranch(perBranch, func(sub *mpc.Group) (int64, error) {
				var r *core.Result
				var err error
				sub.Span("heavy stratum", func() {
					// Charge the shipment of the branch instance onto its
					// group (one round, spread round-robin).
					units := make([]int, sub.Size())
					per := branchIn.TotalTuples()/sub.Size() + 1
					for i := range units {
						units[i] = per
					}
					sub.ChargeControl(units)
					r, err = core.Run(sub, branchIn, core.Options{Strategy: core.PathOptimal})
				})
				if err != nil {
					return 0, err
				}
				return r.Emitted, nil
			}))
		}
	}

	g.Parallel(branches)
	for _, es := range errSlots {
		if *es != nil {
			return nil, *es
		}
	}
	for _, e := range emits {
		res.Emitted += e
	}
	return res, nil
}

// triangleShape verifies the query is a 3-cycle of binary relations and
// returns its attributes in id order.
func triangleShape(q *hypergraph.Query) ([]int, error) {
	if q.NumEdges() != 3 || q.AllVars().Len() != 3 {
		return nil, fmt.Errorf("cyclic: %s is not a triangle (3 binary relations over 3 attributes)", q.Name())
	}
	for e := 0; e < 3; e++ {
		if q.EdgeVars(e).Len() != 2 {
			return nil, fmt.Errorf("cyclic: %s: relation %s is not binary", q.Name(), q.Edge(e).Name)
		}
	}
	for _, a := range q.AllVars().Attrs() {
		if q.Degree(a) != 2 {
			return nil, fmt.Errorf("cyclic: %s: attribute %s has degree %d", q.Name(), q.AttrName(a), q.Degree(a))
		}
	}
	if q.IsAcyclic() {
		return nil, fmt.Errorf("cyclic: %s is acyclic, use internal/core", q.Name())
	}
	return q.AllVars().Attrs(), nil
}

// heavyValuesIn lists the distinct h-values present in both relations
// incident to h within the stratum (sorted for determinism).
func heavyValuesIn(in *relation.Instance, q *hypergraph.Query, h int) []relation.Value {
	es := q.EdgesWith(h).Edges()
	counts := make(map[relation.Value]int)
	for _, e := range es {
		for v := range in.Rel(e).DistinctValues(h) {
			counts[v]++
		}
	}
	var out []relation.Value
	for v, c := range counts { // map order is random; sorted below
		if c == len(es) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// residualInstance builds the acyclic residual query for h = v: the
// triangle minus vertex h. Relations containing h are filtered to v and
// projected; the opposite relation is kept whole. Returns nil when some
// relation empties.
func residualInstance(in *relation.Instance, h int, v relation.Value) (*relation.Instance, error) {
	q := in.Query
	rq := hypergraph.NewQuery(q.Name() + "|res")
	var rels []*relation.Relation
	for e := 0; e < q.NumEdges(); e++ {
		r := in.Rel(e)
		if q.EdgeVars(e).Contains(h) {
			rest := q.EdgeVars(e).Clone()
			rest.Remove(h)
			filtered := r.SelectEqProject(h, v, rest.Attrs()...)
			if filtered.Len() == 0 {
				return nil, nil
			}
			rq.AddEdgeVars(q.Edge(e).Name, rest)
			rels = append(rels, filtered)
		} else {
			rq.AddEdgeVars(q.Edge(e).Name, q.EdgeVars(e))
			rels = append(rels, r)
		}
	}
	out := &relation.Instance{Query: rq, Relations: rels}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
