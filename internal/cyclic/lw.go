package cyclic

import (
	"fmt"
	"math"
	"sort"

	"coverpack/internal/core"
	"coverpack/internal/hypercube"
	"coverpack/internal/hypergraph"
	"coverpack/internal/mpc"
	"coverpack/internal/primitives"
	"coverpack/internal/relation"
)

// RunLW executes the multi-round worst-case optimal algorithm for any
// Loomis-Whitney join LW_n (E = {V−{x} : x ∈ V}, footnote 3 — the
// triangle is LW_3), the other family of Table 1's multi-round cell.
// Load: Õ(N/p^{1/ρ*}) with ρ* = n/(n−1).
//
// Same decomposition as the triangle: δ = N/p^{(n-1)/n}-style cutoff,
// stratify by the heavy pattern, run the all-light stratum on one-round
// HyperCube, and observe that fixing a heavy value of x makes the
// residual trivially acyclic — the edge V−{x} (which never contained x)
// becomes a full edge of the residual and absorbs every other relation,
// so internal/core finishes each heavy branch.
func RunLW(g *mpc.Group, in *relation.Instance) (*Result, error) {
	q := in.Query
	if !q.IsLoomisWhitney() {
		return nil, fmt.Errorf("cyclic: %s is not a Loomis-Whitney join", q.Name())
	}
	attrs := q.AllVars().Attrs()
	nAttrs := len(attrs)
	n := in.N()
	p := g.Size()
	// Heavy cutoff: the share per dimension is p^{1/n} (every attribute
	// participates in n−1 of the n relations; the symmetric share LP
	// gives s_v = 1/n).
	delta := int64(float64(n) / math.Pow(float64(p), 1/float64(nAttrs)))
	if delta < 1 {
		delta = 1
	}

	// One dedup + scatter per relation, shared by the statistics loop
	// (each edge recurs once per incident attribute — n−1 times for
	// LW_n) and the 2^n-mask stratification loop below.
	dedup := make([]*relation.Relation, q.NumEdges())
	scattered := make([]*mpc.DistRelation, q.NumEdges())
	for e := 0; e < q.NumEdges(); e++ {
		dedup[e] = in.Rel(e).DedupPar(g)
		scattered[e] = g.Scatter(dedup[e])
	}

	cntAttr := q.NumAttrs() + 1
	heavy := make(map[int]map[relation.Value]bool, nAttrs)
	g.Span("statistics", func() {
		for _, a := range attrs {
			heavy[a] = make(map[relation.Value]bool)
			for _, e := range q.EdgesWith(a).Edges() {
				degs := primitives.Degrees(g, scattered[e], a, cntAttr)
				rows := g.Gather(primitives.HeavyFilter(g, degs, cntAttr, delta))
				ap := rows.Schema().Pos(a)
				for i := 0; i < rows.Len(); i++ {
					heavy[a][rows.Row(i)[ap]] = true
				}
			}
		}
	})

	pos := make(map[int]int, nAttrs)
	for i, a := range attrs {
		pos[a] = i
	}
	pattern := func(r *relation.Relation, t relation.Tuple) (mask uint16) {
		for _, a := range r.Schema().Attrs() {
			if heavy[a][r.Get(t, a)] {
				mask |= 1 << uint(pos[a])
			}
		}
		return
	}
	edgeMask := func(e int) (m uint16) {
		for _, a := range q.EdgeVars(e).Attrs() {
			m |= 1 << uint(pos[a])
		}
		return
	}

	res := &Result{Threshold: delta}
	var branches []mpc.Branch
	var emits []int64
	var errSlots []*error
	addBranch := func(servers int, run func(sub *mpc.Group) (int64, error)) {
		idx := len(emits)
		emits = append(emits, 0)
		errSlot := new(error)
		errSlots = append(errSlots, errSlot)
		branches = append(branches, mpc.Branch{
			Servers: servers,
			Run: func(sub *mpc.Group) {
				emits[idx], *errSlot = run(sub)
			},
		})
	}

	limit := uint16(1) << uint(nAttrs)
	for mask := uint16(0); mask < limit; mask++ {
		strat := relation.NewInstance(q)
		empty := false
		for e := 0; e < q.NumEdges(); e++ {
			em := edgeMask(e)
			src := dedup[e]
			dst := strat.Rel(e)
			for i := 0; i < src.Len(); i++ {
				if t := src.Row(i); pattern(src, t) == mask&em {
					dst.Add(t)
				}
			}
			if dst.Len() == 0 {
				empty = true
				break
			}
		}
		if empty {
			continue
		}
		if mask == 0 {
			stratIn := strat
			addBranch(p, func(sub *mpc.Group) (int64, error) {
				var r *hypercube.Result
				var err error
				sub.Span("light stratum", func() { r, err = hypercube.Run(sub, stratIn) })
				if err != nil {
					return 0, err
				}
				return r.Emitted, nil
			})
			continue
		}
		// Split on the lowest heavy attribute.
		h := -1
		for i, a := range attrs {
			if mask&(1<<uint(i)) != 0 {
				h = a
				break
			}
		}
		vals := lwHeavyValues(strat, q, h)
		if len(vals) == 0 {
			continue
		}
		perBranch := p / len(vals)
		if perBranch < 1 {
			perBranch = 1
		}
		for _, v := range vals {
			sub, err := residualInstance(strat, h, v)
			if err != nil {
				return nil, err
			}
			if sub == nil {
				continue
			}
			res.HeavyBranches++
			branchIn := sub
			addBranch(perBranch, func(sg *mpc.Group) (int64, error) {
				var r *core.Result
				var err error
				sg.Span("heavy stratum", func() {
					units := make([]int, sg.Size())
					per := branchIn.TotalTuples()/sg.Size() + 1
					for i := range units {
						units[i] = per
					}
					sg.ChargeControl(units)
					r, err = core.Run(sg, branchIn, core.Options{Strategy: core.PathOptimal})
				})
				if err != nil {
					return 0, err
				}
				return r.Emitted, nil
			})
		}
	}

	g.Parallel(branches)
	for _, es := range errSlots {
		if *es != nil {
			return nil, *es
		}
	}
	for _, e := range emits {
		res.Emitted += e
	}
	return res, nil
}

// lwHeavyValues lists the distinct h-values present in every relation
// containing h within the stratum (sorted).
func lwHeavyValues(in *relation.Instance, q *hypergraph.Query, h int) []relation.Value {
	es := q.EdgesWith(h).Edges()
	counts := make(map[relation.Value]int)
	for _, e := range es {
		for v := range in.Rel(e).DistinctValues(h) {
			counts[v]++
		}
	}
	var out []relation.Value
	for v, c := range counts { // map order is random; sorted below
		if c == len(es) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
