package cyclic

import (
	"testing"

	"coverpack/internal/hypergraph"
	"coverpack/internal/mpc"
	"coverpack/internal/relation"
	"coverpack/internal/workload"
)

func TestRunLWExactOnUniform(t *testing.T) {
	q := hypergraph.LoomisWhitneyJoin(4)
	in := workload.Uniform(q, 200, 12, 3)
	want := in.JoinSize()
	c := mpc.NewCluster(16)
	res, err := RunLW(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != want {
		t.Fatalf("emitted %d, want %d", res.Emitted, want)
	}
}

func TestRunLWExactOnAGM(t *testing.T) {
	// LW_4 AGM worst case: ρ* = 4/3, output N^{4/3}.
	q := hypergraph.LoomisWhitneyJoin(4)
	in, err := workload.AGMWorstCase(q, 256) // dom 4 per attr (256^{1/4})
	if err != nil {
		t.Fatal(err)
	}
	want := in.JoinSize()
	c := mpc.NewCluster(16)
	res, err := RunLW(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != want {
		t.Fatalf("emitted %d, want %d", res.Emitted, want)
	}
}

func TestRunLWExactOnSkew(t *testing.T) {
	// Explicit heavy construction: X1 is pinned to 0 in every relation
	// containing it, so the single value 0 has degree d² ≫ δ and the
	// heavy machinery must fire. The X1-free relation R1 and the
	// projections of the others are full d×d grids, so the output is
	// |R1| = d².
	q := hypergraph.LoomisWhitneyJoin(4)
	in := relation.NewInstance(q)
	const d = 12
	for e := 0; e < q.NumEdges(); e++ {
		r := in.Rel(e)
		schema := r.Schema()
		x1 := q.AttrID("X1")
		if schema.Has(x1) {
			free := make([]int, 0, 2)
			for _, a := range schema.Attrs() {
				if a != x1 {
					free = append(free, a)
				}
			}
			for a := int64(0); a < d; a++ {
				for b := int64(0); b < d; b++ {
					tp := make(relation.Tuple, schema.Len())
					tp[schema.Pos(free[0])] = a
					tp[schema.Pos(free[1])] = b
					r.Add(tp) // X1 column stays 0
				}
			}
		} else {
			// R1(X2,X3,X4): a d×d grid with the third coordinate
			// determined, so |R1| = d² and every tuple joins.
			as := schema.Attrs()
			for a := int64(0); a < d; a++ {
				for b := int64(0); b < d; b++ {
					tp := make(relation.Tuple, schema.Len())
					tp[schema.Pos(as[0])] = a
					tp[schema.Pos(as[1])] = b
					tp[schema.Pos(as[2])] = (a + b) % d
					r.Add(tp)
				}
			}
		}
	}
	want := in.JoinSize()
	if want != d*d {
		t.Fatalf("construction broken: oracle output %d, want %d", want, d*d)
	}
	c := mpc.NewCluster(16)
	res, err := RunLW(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != want {
		t.Fatalf("emitted %d, want %d", res.Emitted, want)
	}
	if res.HeavyBranches == 0 {
		t.Fatal("pinned heavy value produced no heavy branches")
	}
}

func TestRunLWTriangleAgrees(t *testing.T) {
	// The triangle is LW_3: both entry points must emit identically.
	q := hypergraph.TriangleJoin()
	in := workload.Uniform(q, 250, 40, 8)
	c1 := mpc.NewCluster(16)
	r1, err := RunTriangle(c1.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	c2 := mpc.NewCluster(16)
	r2, err := RunLW(c2.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Emitted != r2.Emitted {
		t.Fatalf("triangle %d vs LW %d", r1.Emitted, r2.Emitted)
	}
}

func TestRunLWRejects(t *testing.T) {
	for _, q := range []*hypergraph.Query{
		hypergraph.PathJoin(3),
		hypergraph.SquareJoin(),
		hypergraph.CycleJoin(4),
	} {
		c := mpc.NewCluster(4)
		if _, err := RunLW(c.Root(), workload.Matching(q, 5)); err == nil {
			t.Errorf("%s: expected rejection", q.Name())
		}
	}
}
