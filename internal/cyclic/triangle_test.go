package cyclic

import (
	"math"
	"testing"

	"coverpack/internal/hypergraph"
	"coverpack/internal/mpc"
	"coverpack/internal/workload"
)

func TestRunTriangleExactOnUniform(t *testing.T) {
	q := hypergraph.TriangleJoin()
	in := workload.Uniform(q, 400, 60, 3)
	want := in.JoinSize()
	c := mpc.NewCluster(16)
	res, err := RunTriangle(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != want {
		t.Fatalf("emitted %d, want %d", res.Emitted, want)
	}
}

func TestRunTriangleExactOnSkew(t *testing.T) {
	q := hypergraph.TriangleJoin()
	// Heavy hub: value 0 everywhere, plus light diagonal — the
	// all-pattern strata all fire.
	in := workload.HeavyHub(q, 300)
	want := in.JoinSize()
	c := mpc.NewCluster(16)
	res, err := RunTriangle(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != want {
		t.Fatalf("emitted %d, want %d", res.Emitted, want)
	}
}

func TestRunTriangleExactOnMatching(t *testing.T) {
	q := hypergraph.TriangleJoin()
	in := workload.Matching(q, 500)
	c := mpc.NewCluster(27)
	res, err := RunTriangle(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 500 {
		t.Fatalf("emitted %d, want 500", res.Emitted)
	}
}

func TestRunTriangleExactOnAGMWorstCase(t *testing.T) {
	q := hypergraph.TriangleJoin()
	in, err := workload.AGMWorstCase(q, 400) // 20² per attr pair; output 400^1.5 = 8000
	if err != nil {
		t.Fatal(err)
	}
	want := in.JoinSize()
	c := mpc.NewCluster(27)
	res, err := RunTriangle(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != want {
		t.Fatalf("emitted %d, want %d", res.Emitted, want)
	}
}

func TestRunTriangleLoadScaling(t *testing.T) {
	// Worst-case load must track N/p^{2/3} in shape: compare p=8 vs
	// p=64 (theory ratio 4).
	q := hypergraph.TriangleJoin()
	in, err := workload.AGMWorstCase(q, 1024)
	if err != nil {
		t.Fatal(err)
	}
	loads := map[int]int{}
	for _, p := range []int{8, 64} {
		c := mpc.NewCluster(p)
		if _, err := RunTriangle(c.Root(), in); err != nil {
			t.Fatal(err)
		}
		loads[p] = c.Stats().MaxLoad
	}
	ratio := float64(loads[8]) / float64(loads[64])
	if ratio < 1.8 {
		t.Fatalf("load scaling too flat: %v (ratio %.2f)", loads, ratio)
	}
	bound := float64(1024) / math.Pow(64, 2.0/3.0)
	if float64(loads[64]) > 8*bound {
		t.Fatalf("p=64 load %d far above N/p^(2/3) = %.0f", loads[64], bound)
	}
}

func TestTriangleShapeRejections(t *testing.T) {
	for _, q := range []*hypergraph.Query{
		hypergraph.PathJoin(3),
		hypergraph.SquareJoin(),
		hypergraph.LoomisWhitneyJoin(4),
		hypergraph.MustParse("fat", "R1(A,B,C) R2(B,C) R3(C,A)"),
	} {
		c := mpc.NewCluster(4)
		in := workload.Matching(q, 5)
		if _, err := RunTriangle(c.Root(), in); err == nil {
			t.Errorf("%s: expected rejection", q.Name())
		}
	}
}

func TestRunTriangleEmptyRelation(t *testing.T) {
	q := hypergraph.TriangleJoin()
	in := workload.Matching(q, 10)
	in.Relations[1] = in.Rel(1).SelectEq(q.AttrID("X2"), -999) // empty it
	c := mpc.NewCluster(4)
	res, err := RunTriangle(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emitted != 0 {
		t.Fatalf("emitted %d from empty relation", res.Emitted)
	}
}
