// Package fractional computes the query-dependent quantities the paper's
// bounds are stated in: the optimal fractional edge covering number ρ*,
// the optimal fractional edge packing number τ*, their dual fractional
// vertex covers, the edge quasi-packing number ψ* of [19], and the AGM
// bound. All numbers are exact rationals produced by the internal/lp
// simplex, so structural facts the paper relies on — half-integrality of
// degree-two solutions (Lemma 5.3), integrality of acyclic covers
// (Lemma A.2), τ* + ρ* = |E| for degree-two joins — are checked with
// exact comparisons.
package fractional

import (
	"fmt"
	"math"
	"math/big"

	"coverpack/internal/hypergraph"
	"coverpack/internal/lp"
)

// Assignment is a fractional weighting of the relations (edges) of a
// query, e.g. an edge cover or packing.
type Assignment struct {
	Query   *hypergraph.Query
	Weights []*big.Rat // indexed by edge
	Number  *big.Rat   // Σ_e Weights[e]
}

// Value returns the weight of edge e.
func (a *Assignment) Value(e int) *big.Rat { return a.Weights[e] }

// Support returns the edges with nonzero weight.
func (a *Assignment) Support() hypergraph.EdgeSet {
	var es hypergraph.EdgeSet
	for i, w := range a.Weights {
		if w.Sign() != 0 {
			es.Add(i)
		}
	}
	return es
}

// IsIntegral reports whether every weight is an integer.
func (a *Assignment) IsIntegral() bool {
	for _, w := range a.Weights {
		if !w.IsInt() {
			return false
		}
	}
	return true
}

// IsHalfIntegral reports whether every weight is a multiple of 1/2.
func (a *Assignment) IsHalfIntegral() bool {
	half := big.NewRat(1, 2)
	for _, w := range a.Weights {
		q := new(big.Rat).Quo(w, half)
		if !q.IsInt() {
			return false
		}
	}
	return true
}

func (a *Assignment) String() string {
	s := ""
	for i, w := range a.Weights {
		if w.Sign() == 0 {
			continue
		}
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("%s=%s", a.Query.Edge(i).Name, w.RatString())
	}
	return fmt.Sprintf("[%s] number=%s", s, a.Number.RatString())
}

// VertexAssignment is a fractional weighting of the attributes, e.g. a
// fractional vertex cover (Section 5.2).
type VertexAssignment struct {
	Query   *hypergraph.Query
	Weights map[int]*big.Rat // attribute id -> weight
	Number  *big.Rat
}

// Value returns the weight of attribute a (zero if absent).
func (v *VertexAssignment) Value(a int) *big.Rat {
	if w, ok := v.Weights[a]; ok {
		return w
	}
	return new(big.Rat)
}

// EdgeSum returns Σ_{v ∈ e} x_v for edge e.
func (v *VertexAssignment) EdgeSum(e int) *big.Rat {
	sum := new(big.Rat)
	for _, a := range v.Query.EdgeVars(e).Attrs() {
		sum.Add(sum, v.Value(a))
	}
	return sum
}

// IsConstantSmall reports whether max_v x_v <= 1 − ε for the given ε
// (Definition 5.4's "constant-small" requirement).
func (v *VertexAssignment) IsConstantSmall(eps *big.Rat) bool {
	limit := new(big.Rat).Sub(big.NewRat(1, 1), eps)
	for _, w := range v.Weights {
		if w.Cmp(limit) > 0 {
			return false
		}
	}
	return true
}

// edgeProblem builds the shared LP skeleton: one variable per edge, one
// row per attribute with coefficient 1 for each edge containing it.
func edgeProblem(q *hypergraph.Query, maximize bool, sense lp.Sense) *lp.Problem {
	m := q.NumEdges()
	p := lp.NewProblem(m, maximize)
	for e := 0; e < m; e++ {
		p.SetObjective(e, lp.Int(1))
	}
	for _, a := range q.AllVars().Attrs() {
		coeffs := make([]*big.Rat, m)
		for e := 0; e < m; e++ {
			if q.EdgeVars(e).Contains(a) {
				coeffs[e] = lp.Int(1)
			} else {
				coeffs[e] = lp.Int(0)
			}
		}
		p.AddConstraint(coeffs, sense, lp.Int(1))
	}
	return p
}

// EdgeCover computes an optimal fractional edge covering: minimize Σf(e)
// subject to Σ_{e ∋ v} f(e) ≥ 1 for every attribute v. Its number is ρ*.
func EdgeCover(q *hypergraph.Query) (*Assignment, error) {
	sol, err := lp.Solve(edgeProblem(q, false, lp.GE))
	if err != nil {
		return nil, fmt.Errorf("fractional: edge cover of %s: %w", q.Name(), err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("fractional: edge cover of %s: %v", q.Name(), sol.Status)
	}
	return &Assignment{Query: q, Weights: sol.X, Number: sol.Value}, nil
}

// EdgePacking computes an optimal fractional edge packing: maximize Σf(e)
// subject to Σ_{e ∋ v} f(e) ≤ 1 for every attribute v. Its number is τ*.
func EdgePacking(q *hypergraph.Query) (*Assignment, error) {
	sol, err := lp.Solve(edgeProblem(q, true, lp.LE))
	if err != nil {
		return nil, fmt.Errorf("fractional: edge packing of %s: %w", q.Name(), err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("fractional: edge packing of %s: %v", q.Name(), sol.Status)
	}
	return &Assignment{Query: q, Weights: sol.X, Number: sol.Value}, nil
}

// VertexCover computes an optimal fractional vertex covering: minimize
// Σx_v subject to Σ_{v ∈ e} x_v ≥ 1 for every edge e. By LP duality its
// number equals τ* (the paper's Section 5.2 uses this prime-dual pair).
func VertexCover(q *hypergraph.Query) (*VertexAssignment, error) {
	attrs := q.AllVars().Attrs()
	n := len(attrs)
	if n == 0 {
		return nil, fmt.Errorf("fractional: vertex cover of %s: no attributes", q.Name())
	}
	pos := make(map[int]int, n)
	for i, a := range attrs {
		pos[a] = i
	}
	p := lp.NewProblem(n, false)
	for i := 0; i < n; i++ {
		p.SetObjective(i, lp.Int(1))
	}
	for e := 0; e < q.NumEdges(); e++ {
		coeffs := make([]*big.Rat, n)
		for i := range coeffs {
			coeffs[i] = lp.Int(0)
		}
		for _, a := range q.EdgeVars(e).Attrs() {
			coeffs[pos[a]] = lp.Int(1)
		}
		p.AddConstraint(coeffs, lp.GE, lp.Int(1))
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("fractional: vertex cover of %s: %w", q.Name(), err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("fractional: vertex cover of %s: %v", q.Name(), sol.Status)
	}
	weights := make(map[int]*big.Rat, n)
	for i, a := range attrs {
		weights[a] = sol.X[i]
	}
	return &VertexAssignment{Query: q, Weights: weights, Number: sol.Value}, nil
}

// VertexPacking computes an optimal fractional vertex packing: maximize
// Σy_v subject to Σ_{v ∈ e} y_v ≤ 1 for every edge e. By LP duality its
// number equals ρ*. It is the recipe for AGM-tight worst-case instances:
// give attribute v a domain of N^{y_v} values and make every relation the
// Cartesian product of its attribute domains — each relation then has at
// most N tuples while the output reaches N^{ρ*}.
func VertexPacking(q *hypergraph.Query) (*VertexAssignment, error) {
	attrs := q.AllVars().Attrs()
	n := len(attrs)
	if n == 0 {
		return nil, fmt.Errorf("fractional: vertex packing of %s: no attributes", q.Name())
	}
	pos := make(map[int]int, n)
	for i, a := range attrs {
		pos[a] = i
	}
	p := lp.NewProblem(n, true)
	for i := 0; i < n; i++ {
		p.SetObjective(i, lp.Int(1))
	}
	for e := 0; e < q.NumEdges(); e++ {
		coeffs := make([]*big.Rat, n)
		for i := range coeffs {
			coeffs[i] = lp.Int(0)
		}
		for _, a := range q.EdgeVars(e).Attrs() {
			coeffs[pos[a]] = lp.Int(1)
		}
		p.AddConstraint(coeffs, lp.LE, lp.Int(1))
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("fractional: vertex packing of %s: %w", q.Name(), err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("fractional: vertex packing of %s: %v", q.Name(), sol.Status)
	}
	weights := make(map[int]*big.Rat, n)
	for i, a := range attrs {
		weights[a] = sol.X[i]
	}
	return &VertexAssignment{Query: q, Weights: weights, Number: sol.Value}, nil
}

// Rho computes ρ*, the optimal fractional edge covering number.
func Rho(q *hypergraph.Query) (*big.Rat, error) {
	a, err := EdgeCover(q)
	if err != nil {
		return nil, err
	}
	return a.Number, nil
}

// Tau computes τ*, the optimal fractional edge packing number.
func Tau(q *hypergraph.Query) (*big.Rat, error) {
	a, err := EdgePacking(q)
	if err != nil {
		return nil, err
	}
	return a.Number, nil
}

// Psi computes ψ*, the optimal fractional edge quasi-packing number of
// [19] (footnote 2): the maximum τ*(Q_x) over all residual queries Q_x,
// x ⊆ V, where the residual drops emptied relations and duplicates.
// The enumeration is exponential in |V|; query sizes are constants (data
// complexity), and Psi refuses queries with more than PsiMaxAttrs
// attributes to keep accidental blowups loud.
func Psi(q *hypergraph.Query) (*big.Rat, error) {
	attrs := q.AllVars().Attrs()
	if len(attrs) > PsiMaxAttrs {
		return nil, fmt.Errorf("fractional: psi of %s: %d attributes exceeds limit %d",
			q.Name(), len(attrs), PsiMaxAttrs)
	}
	best := new(big.Rat)
	for mask := 0; mask < 1<<uint(len(attrs)); mask++ {
		var x hypergraph.VarSet
		for b, a := range attrs {
			if mask&(1<<uint(b)) != 0 {
				x.Add(a)
			}
		}
		res := q.Residual(x)
		if res.NumEdges() == 0 {
			continue
		}
		// Deduplicate only *identical* residual edges: duplicates share
		// every attribute, so merging them never changes the packing
		// optimum, and the LPs stay small. Subset absorption would be
		// wrong here — a strictly smaller residual edge can still carry
		// packing weight on its own (e.g. the triangle's residuals).
		res = dedupEqualEdges(res)
		tau, err := Tau(res)
		if err != nil {
			return nil, fmt.Errorf("fractional: psi of %s: %w", q.Name(), err)
		}
		if tau.Cmp(best) > 0 {
			best = tau
		}
	}
	return best, nil
}

// PsiMaxAttrs bounds the residual enumeration in Psi.
const PsiMaxAttrs = 22

// dedupEqualEdges drops relations whose attribute set duplicates an
// earlier relation's.
func dedupEqualEdges(q *hypergraph.Query) *hypergraph.Query {
	var keep hypergraph.EdgeSet
	for i := 0; i < q.NumEdges(); i++ {
		dup := false
		for j := 0; j < i; j++ {
			if q.EdgeVars(i).Equal(q.EdgeVars(j)) {
				dup = true
				break
			}
		}
		if !dup {
			keep.Add(i)
		}
	}
	if keep.Len() == q.NumEdges() {
		return q
	}
	return q.KeepEdges(keep)
}

// AGMBound returns the Atserias–Grohe–Marx bound on the join output size
// for the given per-relation sizes: min over fractional edge covers f of
// Π_e |R(e)|^{f(e)}. It solves the weighted cover LP (minimize
// Σ f(e)·log|R(e)|) and returns the bound as a float64 along with the
// optimal weighting. Relations with zero size force a zero bound.
func AGMBound(q *hypergraph.Query, sizes []int) (float64, *Assignment, error) {
	if len(sizes) != q.NumEdges() {
		return 0, nil, fmt.Errorf("fractional: AGM of %s: %d sizes for %d relations",
			q.Name(), len(sizes), q.NumEdges())
	}
	for _, s := range sizes {
		if s == 0 {
			return 0, nil, nil
		}
		if s < 0 {
			return 0, nil, fmt.Errorf("fractional: AGM of %s: negative size", q.Name())
		}
	}
	m := q.NumEdges()
	p := lp.NewProblem(m, false)
	for e := 0; e < m; e++ {
		// Rational approximation of log2(size) at 2^-20 precision is
		// far finer than any feasible-basis distinction for these LPs.
		lg := math.Log2(float64(sizes[e]))
		p.SetObjective(e, new(big.Rat).SetFloat64(math.Round(lg*(1<<20))/(1<<20)))
	}
	for _, a := range q.AllVars().Attrs() {
		coeffs := make([]*big.Rat, m)
		for e := 0; e < m; e++ {
			if q.EdgeVars(e).Contains(a) {
				coeffs[e] = lp.Int(1)
			} else {
				coeffs[e] = lp.Int(0)
			}
		}
		p.AddConstraint(coeffs, lp.GE, lp.Int(1))
	}
	sol, err := lp.Solve(p)
	if err != nil {
		return 0, nil, fmt.Errorf("fractional: AGM of %s: %w", q.Name(), err)
	}
	if sol.Status != lp.Optimal {
		return 0, nil, fmt.Errorf("fractional: AGM of %s: %v", q.Name(), sol.Status)
	}
	bound := 1.0
	num := new(big.Rat)
	for e := 0; e < m; e++ {
		w, _ := sol.X[e].Float64()
		bound *= math.Pow(float64(sizes[e]), w)
		num.Add(num, sol.X[e])
	}
	return bound, &Assignment{Query: q, Weights: sol.X, Number: num}, nil
}

// Numbers bundles the three query quantities of Table 1.
type Numbers struct {
	Rho *big.Rat // optimal fractional edge covering number ρ*
	Tau *big.Rat // optimal fractional edge packing number τ*
	Psi *big.Rat // optimal fractional edge quasi-packing number ψ*
}

// Compute returns ρ*, τ* and ψ* for the query.
func Compute(q *hypergraph.Query) (Numbers, error) {
	rho, err := Rho(q)
	if err != nil {
		return Numbers{}, err
	}
	tau, err := Tau(q)
	if err != nil {
		return Numbers{}, err
	}
	psi, err := Psi(q)
	if err != nil {
		return Numbers{}, err
	}
	return Numbers{Rho: rho, Tau: tau, Psi: psi}, nil
}
