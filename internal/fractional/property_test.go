package fractional

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"coverpack/internal/hypergraph"
)

// randomHypergraph builds a small random query: 2–5 relations over 2–6
// attributes, each relation holding 1–3 attributes, every attribute
// used at least once.
func randomHypergraph(rng *rand.Rand) *hypergraph.Query {
	nAttrs := 2 + rng.Intn(5)
	nEdges := 2 + rng.Intn(4)
	q := hypergraph.NewQuery("randh")
	names := make([]string, nAttrs)
	for i := range names {
		names[i] = fmt.Sprintf("A%d", i)
	}
	maxArity := 3
	if nAttrs < maxArity {
		maxArity = nAttrs
	}
	for e := 0; e < nEdges; e++ {
		k := 1 + rng.Intn(maxArity)
		seen := map[int]bool{}
		var attrs []string
		for len(attrs) < k {
			a := rng.Intn(nAttrs)
			if !seen[a] {
				seen[a] = true
				attrs = append(attrs, names[a])
			}
		}
		q.AddEdge(fmt.Sprintf("R%d", e), attrs...)
	}
	// Pad unused attributes into the last relation so the cover LP is
	// feasible over all named attributes... simpler: rebuild the query
	// from only the attributes actually used (they already are, since
	// Attr interning happens on use).
	return q
}

// TestPropertyWeakDuality: τ* ≤ ρ* is FALSE in general, but
// min-cover ≥ 1 and max-packing ≥ ... the reliable invariants are:
// vertex-cover number = τ* (strong LP duality), vertex-packing number
// = ρ*, ψ* ≥ max{ρ*, τ*}, and every returned assignment is feasible.
func TestPropertyDualityAndFeasibility(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(13))}
	one := big.NewRat(1, 1)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomHypergraph(rng)

		cover, err := EdgeCover(q)
		if err != nil {
			t.Logf("seed %d: cover: %v", seed, err)
			return false
		}
		pack, err := EdgePacking(q)
		if err != nil {
			t.Logf("seed %d: pack: %v", seed, err)
			return false
		}
		// Feasibility of returned assignments.
		for _, a := range q.AllVars().Attrs() {
			cSum, pSum := new(big.Rat), new(big.Rat)
			for _, e := range q.EdgesWith(a).Edges() {
				cSum.Add(cSum, cover.Value(e))
				pSum.Add(pSum, pack.Value(e))
			}
			if cSum.Cmp(one) < 0 {
				t.Logf("seed %d: cover misses %s", seed, q.AttrName(a))
				return false
			}
			if pSum.Cmp(one) > 0 {
				t.Logf("seed %d: packing overfills %s", seed, q.AttrName(a))
				return false
			}
		}
		// Strong duality with the vertex LPs.
		vc, err := VertexCover(q)
		if err != nil {
			t.Logf("seed %d: vc: %v", seed, err)
			return false
		}
		if vc.Number.Cmp(pack.Number) != 0 {
			t.Logf("seed %d: vertex cover %s != tau %s", seed, vc.Number.RatString(), pack.Number.RatString())
			return false
		}
		vp, err := VertexPacking(q)
		if err != nil {
			t.Logf("seed %d: vp: %v", seed, err)
			return false
		}
		if vp.Number.Cmp(cover.Number) != 0 {
			t.Logf("seed %d: vertex packing %s != rho %s", seed, vp.Number.RatString(), cover.Number.RatString())
			return false
		}
		// ψ* dominates both.
		psi, err := Psi(q)
		if err != nil {
			t.Logf("seed %d: psi: %v", seed, err)
			return false
		}
		if psi.Cmp(pack.Number) < 0 || psi.Cmp(cover.Number) < 0 {
			t.Logf("seed %d: psi %s below rho/tau", seed, psi.RatString())
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAcyclicIntegralCover: random tree-shaped queries always
// get integral ρ* from the simplex (Lemma A.2).
func TestPropertyAcyclicIntegralCover(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Grow a random tree of binary relations.
		q := hypergraph.NewQuery("randtree")
		attrs := []string{"V0"}
		n := 2 + rng.Intn(6)
		for i := 1; i <= n; i++ {
			from := attrs[rng.Intn(len(attrs))]
			to := fmt.Sprintf("V%d", i)
			attrs = append(attrs, to)
			q.AddEdge(fmt.Sprintf("R%d", i), from, to)
		}
		cover, err := EdgeCover(q)
		if err != nil {
			return false
		}
		return cover.Number.IsInt()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyResidualPackingMonotone: removing attributes never
// decreases the packing number below... actually τ* of a residual can
// move either way; the invariant Psi encodes is that the maximum over
// residuals is attained, so Psi(q) >= Tau(residual) for a few sampled
// residuals.
func TestPropertyPsiDominatesResiduals(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(23))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomHypergraph(rng)
		psi, err := Psi(q)
		if err != nil {
			return false
		}
		attrs := q.AllVars().Attrs()
		for trial := 0; trial < 3; trial++ {
			var x hypergraph.VarSet
			for _, a := range attrs {
				if rng.Intn(2) == 0 {
					x.Add(a)
				}
			}
			res := q.Residual(x)
			if res.NumEdges() == 0 {
				continue
			}
			tau, err := Tau(res)
			if err != nil {
				return false
			}
			if psi.Cmp(tau) < 0 {
				t.Logf("seed %d: psi %s < residual tau %s (x=%s)",
					seed, psi.RatString(), tau.RatString(), q.FormatVars(x))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
