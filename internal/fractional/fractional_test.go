package fractional

import (
	"math"
	"math/big"
	"testing"

	"coverpack/internal/hypergraph"
)

func ratIs(t *testing.T, got *big.Rat, a, b int64, what string) {
	t.Helper()
	want := big.NewRat(a, b)
	if got.Cmp(want) != 0 {
		t.Fatalf("%s: got %s, want %s", what, got.RatString(), want.RatString())
	}
}

func mustNumbers(t *testing.T, q *hypergraph.Query) Numbers {
	t.Helper()
	n, err := Compute(q)
	if err != nil {
		t.Fatalf("Compute(%s): %v", q.Name(), err)
	}
	return n
}

// TestPaperQuantities pins the exact values the paper states for its
// running examples.
func TestPaperQuantities(t *testing.T) {
	cases := []struct {
		q          *hypergraph.Query
		rhoN, rhoD int64
		tauN, tauD int64
		psiN, psiD int64
	}{
		// Figure 2: ρ* = 2 ({R1,R2}), τ* = 3 ({R3,R4,R5}).
		{hypergraph.SquareJoin(), 2, 1, 3, 1, 3, 1},
		// Triangle: half-integral 3/2 both; ψ* = 2.
		{hypergraph.TriangleJoin(), 3, 2, 3, 2, 2, 1},
		// Section 1.3: ρ* = 1, ψ* = τ* = 2.
		{hypergraph.SemiJoinExample(), 1, 1, 2, 1, 2, 1},
		// Star-dual with m = 3: ρ* = 1, τ* = ψ* = 3.
		{hypergraph.StarDualJoin(3), 1, 1, 3, 1, 3, 1},
		// LW_4: ρ* = τ* = n/(n−1) = 4/3 (footnote 3).
		{hypergraph.LoomisWhitneyJoin(4), 4, 3, 4, 3, 2, 1},
		// Even cycle C4: integral ρ* = τ* = 2.
		{hypergraph.CycleJoin(4), 2, 1, 2, 1, 2, 1},
		// Odd cycle C5: half-integral ρ* = τ* = 5/2.
		{hypergraph.CycleJoin(5), 5, 2, 5, 2, 3, 1},
		// Line-3: ρ* = τ* = ψ* = 2.
		{hypergraph.Line3Join(), 2, 1, 2, 1, 2, 1},
	}
	for _, tc := range cases {
		n := mustNumbers(t, tc.q)
		ratIs(t, n.Rho, tc.rhoN, tc.rhoD, tc.q.Name()+" rho")
		ratIs(t, n.Tau, tc.tauN, tc.tauD, tc.q.Name()+" tau")
		ratIs(t, n.Psi, tc.psiN, tc.psiD, tc.q.Name()+" psi")
	}
}

func TestFigure4Rho(t *testing.T) {
	// Example 3.4 states ρ* = 6 for the Figure 4 query.
	rho, err := Rho(hypergraph.Figure4Join())
	if err != nil {
		t.Fatal(err)
	}
	ratIs(t, rho, 6, 1, "figure4 rho")
}

func TestSpokeJoinNumbers(t *testing.T) {
	for k := 2; k <= 5; k++ {
		q := hypergraph.SpokeJoin(k)
		rho, err := Rho(q)
		if err != nil {
			t.Fatal(err)
		}
		tau, err := Tau(q)
		if err != nil {
			t.Fatal(err)
		}
		ratIs(t, rho, 2, 1, q.Name()+" rho")
		ratIs(t, tau, int64(k), 1, q.Name()+" tau")
	}
}

// TestPsiDominates verifies ψ* >= max{ρ*, τ*} ([19], cited under Table 1)
// across the whole catalog.
func TestPsiDominates(t *testing.T) {
	for _, entry := range hypergraph.Catalog() {
		n := mustNumbers(t, entry.Query)
		if n.Psi.Cmp(n.Tau) < 0 {
			t.Errorf("%s: psi %s < tau %s", entry.Query.Name(), n.Psi.RatString(), n.Tau.RatString())
		}
		if n.Psi.Cmp(n.Rho) < 0 {
			t.Errorf("%s: psi %s < rho %s", entry.Query.Name(), n.Psi.RatString(), n.Rho.RatString())
		}
	}
}

// TestBergeAcyclicTauLeRho verifies Lemma A.3: τ* <= ρ* for reduced
// Berge-acyclic joins.
func TestBergeAcyclicTauLeRho(t *testing.T) {
	for _, entry := range hypergraph.Catalog() {
		q, _ := entry.Query.Reduce()
		if !q.IsBergeAcyclic() {
			continue
		}
		n := mustNumbers(t, q)
		if n.Tau.Cmp(n.Rho) > 0 {
			t.Errorf("%s: berge-acyclic but tau %s > rho %s",
				q.Name(), n.Tau.RatString(), n.Rho.RatString())
		}
	}
}

// TestAcyclicCoverIntegral verifies Lemma A.2: α-acyclic joins admit an
// integral optimal edge cover, and our simplex (returning vertices of
// the cover polytope) produces one.
func TestAcyclicCoverIntegral(t *testing.T) {
	for _, q := range []*hypergraph.Query{
		hypergraph.PathJoin(4),
		hypergraph.PathJoin(7),
		hypergraph.StarJoin(4),
		hypergraph.Figure4Join(),
		hypergraph.TreeJoin(3),
	} {
		cover, err := EdgeCover(q)
		if err != nil {
			t.Fatal(err)
		}
		if !cover.Number.IsInt() {
			t.Errorf("%s: acyclic cover number %s not integral", q.Name(), cover.Number.RatString())
		}
	}
}

func TestVertexCoverDuality(t *testing.T) {
	// Strong duality: vertex cover number equals τ* for every catalog
	// query (they are a primal-dual pair, used throughout Section 5).
	for _, entry := range hypergraph.Catalog() {
		q := entry.Query
		tau, err := Tau(q)
		if err != nil {
			t.Fatal(err)
		}
		vc, err := VertexCover(q)
		if err != nil {
			t.Fatal(err)
		}
		if vc.Number.Cmp(tau) != 0 {
			t.Errorf("%s: vertex cover %s != tau %s", q.Name(), vc.Number.RatString(), tau.RatString())
		}
		// The returned weights must actually cover every edge.
		for e := 0; e < q.NumEdges(); e++ {
			if vc.EdgeSum(e).Cmp(big.NewRat(1, 1)) < 0 {
				t.Errorf("%s: edge %s uncovered", q.Name(), q.Edge(e).Name)
			}
		}
	}
}

func TestAssignmentHelpers(t *testing.T) {
	q := hypergraph.TriangleJoin()
	pack, err := EdgePacking(q)
	if err != nil {
		t.Fatal(err)
	}
	if pack.IsIntegral() {
		t.Fatal("triangle packing should be fractional")
	}
	if !pack.IsHalfIntegral() {
		t.Fatal("triangle packing should be half-integral")
	}
	if pack.Support().Len() != 3 {
		t.Fatalf("support = %v", pack.Support())
	}
	if s := pack.String(); s == "" {
		t.Fatal("empty String()")
	}
	ratIs(t, pack.Value(0), 1, 2, "edge weight")
}

func TestAGMBound(t *testing.T) {
	q := hypergraph.TriangleJoin()
	n := 10000
	bound, asg, err := AGMBound(q, []int{n, n, n})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(float64(n), 1.5)
	if math.Abs(bound-want)/want > 1e-3 {
		t.Fatalf("AGM = %g, want %g", bound, want)
	}
	ratIs(t, asg.Number, 3, 2, "AGM cover number")

	// Asymmetric sizes: tiny R1 shifts weight onto it.
	bound2, _, err := AGMBound(q, []int{1, n, n})
	if err != nil {
		t.Fatal(err)
	}
	if bound2 > float64(n)+1 {
		t.Fatalf("AGM with unit relation = %g, want <= N", bound2)
	}

	// Edge cases.
	if b, _, err := AGMBound(q, []int{0, n, n}); err != nil || b != 0 {
		t.Fatalf("zero relation: %g, %v", b, err)
	}
	if _, _, err := AGMBound(q, []int{n, n}); err == nil {
		t.Fatal("size-arity mismatch should error")
	}
	if _, _, err := AGMBound(q, []int{-1, n, n}); err == nil {
		t.Fatal("negative size should error")
	}
}

func TestPsiRefusesHugeQueries(t *testing.T) {
	q := hypergraph.PathJoin(PsiMaxAttrs + 5)
	if _, err := Psi(q); err == nil {
		t.Fatal("expected attribute-limit error")
	}
}

func TestPathJoinGapGrows(t *testing.T) {
	// The ψ*−ρ* gap the paper highlights for path joins: ψ* strictly
	// exceeds ρ* from length 4 on... at minimum verify monotone growth
	// of both and ψ* >= ρ* throughout.
	prevPsi := new(big.Rat)
	for k := 2; k <= 8; k++ {
		n := mustNumbers(t, hypergraph.PathJoin(k))
		if n.Psi.Cmp(n.Rho) < 0 {
			t.Fatalf("path-%d: psi < rho", k)
		}
		if n.Psi.Cmp(prevPsi) < 0 {
			t.Fatalf("path-%d: psi decreased", k)
		}
		prevPsi = n.Psi
	}
}
