package fractional

import (
	"fmt"
	"math/big"

	"coverpack/internal/hypergraph"
	"coverpack/internal/lp"
)

// Witness is the certificate that a degree-two join is
// edge-packing-provable (Definition 5.4): an optimal fractional vertex
// covering x that is constant-small, together with the induced set
// E' = {e : Σ_{v∈e} x_v > 1} of probabilistic edges, such that every
// edge has at most one neighbor in E'.
//
// The witness drives the Section 5 lower bound: the hard instance gives
// attribute v a domain of N^{x_v} values, builds every edge outside E'
// as a deterministic Cartesian product of exactly N tuples, and samples
// each edge in E' with probability 1/N^{Σx−1}, yielding the
// Ω(N/p^{1/τ*}) bound of Theorem 7.
type Witness struct {
	Provable bool
	// Reason explains a negative result.
	Reason string
	// Cover is the witnessing vertex covering (nil when not provable).
	Cover *VertexAssignment
	// ProbEdges is E', the probabilistically constructed relations.
	ProbEdges hypergraph.EdgeSet
	// Epsilon is a constant with max_v x_v <= 1 − ε.
	Epsilon *big.Rat
}

// EdgePackingProvable decides Definition 5.4 for a query: reduced,
// degree-two, odd-cycle-free, and admitting a witnessing vertex cover.
// The witness search enumerates candidate E' sets (the query has
// constant size) and solves, for each structurally valid candidate, the
// exact LP
//
//	maximize t
//	s.t.  Σ_{v∈e} x_v  =  1       for e ∉ E'
//	      Σ_{v∈e} x_v  ≥  1 + t   for e ∈ E'
//	      Σ_v x_v      =  τ*      (optimality of the cover)
//	      x_v + t      ≤  1       (constant-small with ε = t)
//	      x, t ≥ 0
//
// A positive optimum certifies the candidate; candidates are tried in
// increasing size so the reported E' is minimal.
func EdgePackingProvable(q *hypergraph.Query) (*Witness, error) {
	if !q.IsReduced() {
		return &Witness{Reason: "query is not reduced"}, nil
	}
	if !q.IsDegreeTwo() {
		return &Witness{Reason: "query is not degree-two"}, nil
	}
	if q.HasOddCycle() {
		return &Witness{Reason: "query has an odd-length cycle"}, nil
	}
	tau, err := Tau(q)
	if err != nil {
		return nil, err
	}

	m := q.NumEdges()
	candidates := hypergraph.SubsetsOf(q.AllEdges().Edges())
	// Increasing-size order keeps E' minimal and tries the all-
	// deterministic candidate (E' = ∅) first.
	for size := 0; size <= m; size++ {
		for _, cand := range candidates {
			if cand.Len() != size {
				continue
			}
			if !neighborCondition(q, cand) {
				continue
			}
			cover, eps, ok, err := solveWitness(q, cand, tau)
			if err != nil {
				return nil, err
			}
			if ok {
				return &Witness{
					Provable:  true,
					Cover:     cover,
					ProbEdges: cand,
					Epsilon:   eps,
				}, nil
			}
		}
	}
	return &Witness{Reason: "no optimal constant-small vertex cover matches any E' candidate"}, nil
}

// neighborCondition checks |Γ(e) ∩ E'| ≤ 1 for every edge e, where
// Γ(e) is the set of edges sharing an attribute with e (excluding e).
func neighborCondition(q *hypergraph.Query, probe hypergraph.EdgeSet) bool {
	m := q.NumEdges()
	for e := 0; e < m; e++ {
		cnt := 0
		for f := 0; f < m; f++ {
			if f == e || !probe.Contains(f) {
				continue
			}
			if q.EdgeVars(e).Intersects(q.EdgeVars(f)) {
				cnt++
			}
		}
		if cnt > 1 {
			return false
		}
	}
	return true
}

// solveWitness solves the witness LP for one candidate E'.
func solveWitness(q *hypergraph.Query, probe hypergraph.EdgeSet, tau *big.Rat) (*VertexAssignment, *big.Rat, bool, error) {
	attrs := q.AllVars().Attrs()
	n := len(attrs)
	pos := make(map[int]int, n)
	for i, a := range attrs {
		pos[a] = i
	}
	// Variables: x_0..x_{n-1}, then t.
	p := lp.NewProblem(n+1, true)
	p.SetObjective(n, lp.Int(1))

	zeroRow := func() []*big.Rat {
		row := make([]*big.Rat, n+1)
		for i := range row {
			row[i] = lp.Int(0)
		}
		return row
	}
	for e := 0; e < q.NumEdges(); e++ {
		row := zeroRow()
		for _, a := range q.EdgeVars(e).Attrs() {
			row[pos[a]] = lp.Int(1)
		}
		if probe.Contains(e) {
			row[n] = lp.Int(-1) // Σx − t ≥ 1
			p.AddConstraint(row, lp.GE, lp.Int(1))
		} else {
			p.AddConstraint(row, lp.EQ, lp.Int(1))
		}
	}
	// Optimality: Σ x_v = τ*.
	row := zeroRow()
	for i := 0; i < n; i++ {
		row[i] = lp.Int(1)
	}
	p.AddConstraint(row, lp.EQ, tau)
	// Constant-small: x_v + t ≤ 1.
	for i := 0; i < n; i++ {
		row := zeroRow()
		row[i] = lp.Int(1)
		row[n] = lp.Int(1)
		p.AddConstraint(row, lp.LE, lp.Int(1))
	}

	sol, err := lp.Solve(p)
	if err != nil {
		return nil, nil, false, fmt.Errorf("fractional: witness LP for %s: %w", q.Name(), err)
	}
	if sol.Status != lp.Optimal || sol.Value.Sign() <= 0 {
		return nil, nil, false, nil
	}
	weights := make(map[int]*big.Rat, n)
	num := new(big.Rat)
	for i, a := range attrs {
		weights[a] = sol.X[i]
		num.Add(num, sol.X[i])
	}
	cover := &VertexAssignment{Query: q, Weights: weights, Number: num}
	return cover, sol.X[n], true, nil
}

// DegreeTwoFacts verifies the structural facts of Lemma 5.3 for a
// reduced degree-two join and returns them for reporting: τ* = |E|/2 ≥ ρ*,
// τ* + ρ* = |E|, and half-integrality (integrality when odd-cycle-free)
// of the optimal packing and covering.
type DegreeTwoFacts struct {
	Tau, Rho         *big.Rat
	SumIsEdgeCount   bool // τ* + ρ* = |E|
	TauAtLeastHalfE  bool // τ* >= |E|/2
	RhoAtMostHalfE   bool // ρ* <= |E|/2
	PackingHalfInt   bool
	CoverHalfInt     bool
	PackingIntegral  bool
	CoverIntegral    bool
	OddCycleFree     bool
	IntegralIfNoCycl bool // odd-cycle-free ⇒ integral optima found
}

// CheckDegreeTwo computes the Lemma 5.3 facts. It errors if the query is
// not a reduced degree-two join.
func CheckDegreeTwo(q *hypergraph.Query) (*DegreeTwoFacts, error) {
	if !q.IsReduced() || !q.IsDegreeTwo() {
		return nil, fmt.Errorf("fractional: %s is not a reduced degree-two join", q.Name())
	}
	pack, err := EdgePacking(q)
	if err != nil {
		return nil, err
	}
	cover, err := EdgeCover(q)
	if err != nil {
		return nil, err
	}
	e := lp.Int(int64(q.NumEdges()))
	halfE := new(big.Rat).Mul(e, big.NewRat(1, 2))
	sum := new(big.Rat).Add(pack.Number, cover.Number)
	f := &DegreeTwoFacts{
		Tau:             pack.Number,
		Rho:             cover.Number,
		SumIsEdgeCount:  sum.Cmp(e) == 0,
		TauAtLeastHalfE: pack.Number.Cmp(halfE) >= 0,
		RhoAtMostHalfE:  cover.Number.Cmp(halfE) <= 0,
		PackingHalfInt:  pack.IsHalfIntegral(),
		CoverHalfInt:    cover.IsHalfIntegral(),
		PackingIntegral: pack.IsIntegral(),
		CoverIntegral:   cover.IsIntegral(),
		OddCycleFree:    !q.HasOddCycle(),
	}
	f.IntegralIfNoCycl = !f.OddCycleFree || (f.PackingIntegral && f.CoverIntegral)
	return f, nil
}
