package fractional

import (
	"math/big"
	"testing"

	"coverpack/internal/hypergraph"
)

func TestSquareJoinProvable(t *testing.T) {
	// The paper: Q_□ is edge-packing-provable; the Theorem 6 instance
	// uses x_A = x_B = x_C = 1/3, x_D = x_E = x_F = 2/3 with the
	// probabilistic relation E' = {R2}.
	q := hypergraph.SquareJoin()
	w, err := EdgePackingProvable(q)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Provable {
		t.Fatalf("square join not provable: %s", w.Reason)
	}
	// By the hub symmetry of Q_□ both {R1} and {R2} witness; the search
	// must return one singleton hub.
	hub := w.ProbEdges.Contains(q.EdgeIndex("R1")) || w.ProbEdges.Contains(q.EdgeIndex("R2"))
	if w.ProbEdges.Len() != 1 || !hub {
		t.Fatalf("E' = %s, want a singleton hub", q.FormatEdges(w.ProbEdges))
	}
	if w.Epsilon.Sign() <= 0 {
		t.Fatalf("epsilon = %s", w.Epsilon.RatString())
	}
	// The witness must be an optimal cover (number = τ* = 3)…
	if w.Cover.Number.Cmp(big.NewRat(3, 1)) != 0 {
		t.Fatalf("cover number = %s", w.Cover.Number.RatString())
	}
	// …deterministic edges tight, probabilistic edge strictly above 1.
	one := big.NewRat(1, 1)
	for e := 0; e < q.NumEdges(); e++ {
		sum := w.Cover.EdgeSum(e)
		if w.ProbEdges.Contains(e) {
			if sum.Cmp(one) <= 0 {
				t.Fatalf("probabilistic edge %s has sum %s", q.Edge(e).Name, sum.RatString())
			}
		} else if sum.Cmp(one) != 0 {
			t.Fatalf("deterministic edge %s has sum %s", q.Edge(e).Name, sum.RatString())
		}
	}
	if !w.Cover.IsConstantSmall(w.Epsilon) {
		t.Fatal("witness not constant-small at its own epsilon")
	}
}

func TestSpokeJoinsProvable(t *testing.T) {
	for k := 3; k <= 5; k++ {
		q := hypergraph.SpokeJoin(k)
		w, err := EdgePackingProvable(q)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Provable {
			t.Fatalf("spoke-%d not provable: %s", k, w.Reason)
		}
		ratIs(t, w.Cover.Number, int64(k), 1, q.Name()+" witness cover = tau")
	}
}

func TestEvenCycleProvable(t *testing.T) {
	// Even cycles satisfy Definition 5.4 with E' = ∅ (all-deterministic
	// hard instance, τ* = ρ* = k/2).
	q := hypergraph.CycleJoin(4)
	w, err := EdgePackingProvable(q)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Provable {
		t.Fatalf("C4 not provable: %s", w.Reason)
	}
	if !w.ProbEdges.IsEmpty() {
		t.Fatalf("C4 E' = %s, want empty", q.FormatEdges(w.ProbEdges))
	}
}

func TestNotProvableCases(t *testing.T) {
	for _, tc := range []struct {
		q      *hypergraph.Query
		reason string
	}{
		{hypergraph.TriangleJoin(), "odd"},
		{hypergraph.CycleJoin(5), "odd"},
		{hypergraph.PathJoin(3), "degree-two"},
		{hypergraph.MustParse("unreduced", "R1(A,B) R2(A,B)"), "reduced"},
	} {
		w, err := EdgePackingProvable(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if w.Provable {
			t.Errorf("%s: unexpectedly provable", tc.q.Name())
			continue
		}
		if w.Reason == "" {
			t.Errorf("%s: empty reason", tc.q.Name())
		}
	}
}

func TestCheckDegreeTwoFacts(t *testing.T) {
	// Lemma 5.3 on the catalog's reduced degree-two joins.
	for _, q := range []*hypergraph.Query{
		hypergraph.SquareJoin(),
		hypergraph.SpokeJoin(4),
		hypergraph.TriangleJoin(),
		hypergraph.CycleJoin(4),
		hypergraph.CycleJoin(5),
		hypergraph.CycleJoin(6),
	} {
		f, err := CheckDegreeTwo(q)
		if err != nil {
			t.Fatal(err)
		}
		if !f.SumIsEdgeCount {
			t.Errorf("%s: tau+rho != |E| (tau=%s rho=%s)", q.Name(), f.Tau.RatString(), f.Rho.RatString())
		}
		if !f.TauAtLeastHalfE || !f.RhoAtMostHalfE {
			t.Errorf("%s: tau >= |E|/2 >= rho violated", q.Name())
		}
		if !f.PackingHalfInt || !f.CoverHalfInt {
			t.Errorf("%s: optima not half-integral", q.Name())
		}
		if !f.IntegralIfNoCycl {
			t.Errorf("%s: odd-cycle-free but non-integral optima", q.Name())
		}
	}
}

func TestCheckDegreeTwoRejects(t *testing.T) {
	if _, err := CheckDegreeTwo(hypergraph.PathJoin(3)); err == nil {
		t.Fatal("expected rejection of non-degree-two query")
	}
}

func TestNeighborCondition(t *testing.T) {
	q := hypergraph.SquareJoin()
	// Both hubs probabilistic: every spoke would have two probabilistic
	// neighbors — must be rejected structurally.
	both := hypergraph.NewEdgeSet(q.EdgeIndex("R1"), q.EdgeIndex("R2"))
	if neighborCondition(q, both) {
		t.Fatal("two-hub candidate should fail the neighbor condition")
	}
	if !neighborCondition(q, hypergraph.NewEdgeSet(q.EdgeIndex("R2"))) {
		t.Fatal("single-hub candidate should pass")
	}
}

func TestIsConstantSmall(t *testing.T) {
	q := hypergraph.SquareJoin()
	va := &VertexAssignment{
		Query: q,
		Weights: map[int]*big.Rat{
			q.AttrID("A"): big.NewRat(1, 3),
			q.AttrID("D"): big.NewRat(2, 3),
		},
	}
	if !va.IsConstantSmall(big.NewRat(1, 3)) {
		t.Fatal("1/3-small check failed")
	}
	if va.IsConstantSmall(big.NewRat(1, 2)) {
		t.Fatal("1/2-small check should fail with a 2/3 weight")
	}
	if va.Value(q.AttrID("B")).Sign() != 0 {
		t.Fatal("missing attr should read as zero")
	}
}
