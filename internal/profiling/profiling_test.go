package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// An unwritable profile path must fail at Start, not at exit.
func TestStartErrorsEarlyOnUnwritablePath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "prof.out")
	if _, err := Start(bad, ""); err == nil {
		t.Fatal("Start with unwritable cpu path: want error, got nil")
	}
	if _, err := Start("", bad); err == nil {
		t.Fatal("Start with unwritable heap path: want error, got nil")
	}
}

// A failed Start must not leave a half-created file from the path that
// did validate.
func TestStartCleansUpOnPartialFailure(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "cpu.out")
	bad := filepath.Join(dir, "no-such-dir", "mem.out")
	if _, err := Start(good, bad); err == nil {
		t.Fatal("Start: want error, got nil")
	}
	if _, err := os.Stat(good); !os.IsNotExist(err) {
		t.Fatalf("cpu file left behind after failed Start: stat err = %v", err)
	}
}

func TestStartAndStopWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: profile file is empty", p)
		}
	}
}

func TestStartNoopWhenBothEmpty(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}
