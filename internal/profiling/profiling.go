// Package profiling wraps runtime/pprof CPU and heap profiling with
// eager path validation: both output files are created at Start, so a
// mistyped or unwritable -cpuprofile/-memprofile path fails at process
// startup instead of silently at exit — after the expensive run already
// happened.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. Empty paths disable the
// corresponding profile; with both empty the returned stop is a no-op.
// The caller must invoke stop (usually deferred) to finalize: it stops
// the CPU profile and snapshots the heap after a GC, so the heap
// profile reflects retained memory rather than transient garbage.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile, memFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			cpuFile.Close()
			os.Remove(cpuFile.Name())
		}
		if memFile != nil {
			memFile.Close()
			os.Remove(memFile.Name())
		}
	}
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if memPath != "" {
		memFile, err = os.Create(memPath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("heap profile: %w", err)
		}
	}
	if cpuFile != nil {
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memFile != nil {
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil && first == nil {
				first = fmt.Errorf("heap profile: %w", err)
			}
			if err := memFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("heap profile: %w", err)
			}
		}
		return first
	}, nil
}
