package hashtab

import (
	"encoding/binary"
	"testing"
)

// FuzzTableMatchesLegacyMap drives a Table and the legacy
// map[string]int side by side over the same random tuple stream: every
// insert must agree on novelty and on the dense entry index, every
// lookup on membership, and every hash on the legacy FNV-over-Key
// destination for a range of server counts.
func FuzzTableMatchesLegacyMap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255}, uint8(3))
	f.Add([]byte{7}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, arityByte uint8) {
		arity := int(arityByte)%4 + 1
		pos := make([]int, arity)
		for i := range pos {
			pos[i] = i
		}
		tab := New(arity, 0)
		legacy := make(map[string]int)
		row := make([]int64, arity)
		buf := make([]byte, 8*arity)
		for off := 0; off+arity <= len(data); off += arity {
			for i := 0; i < arity; i++ {
				// Spread the byte across lanes so distinct bytes make
				// distinct values while collisions stay frequent.
				row[i] = int64(data[off+i]) - 128
				binary.BigEndian.PutUint64(buf[8*i:], uint64(row[i]))
			}
			key := string(buf)

			if got, want := Hash(row, pos), legacyFNV(buf); got != want {
				t.Fatalf("Hash(%v) = %#x, legacy %#x", row, got, want)
			}
			for _, p := range []uint64{1, 2, 7, 16, 101} {
				if Hash(row, pos)%p != legacyFNV(buf)%p {
					t.Fatalf("destination diverged at p=%d", p)
				}
			}

			legacyIdx, legacyFound := legacy[key], false
			if _, ok := legacy[key]; ok {
				legacyFound = true
			} else {
				legacyIdx = len(legacy)
				legacy[key] = legacyIdx
			}
			idx, found := tab.Insert(row, pos)
			if idx != legacyIdx || found != legacyFound {
				t.Fatalf("Insert(%v) = (%d, %v), legacy map gives (%d, %v)",
					row, idx, found, legacyIdx, legacyFound)
			}
			if got := tab.Find(row, pos); got != legacyIdx {
				t.Fatalf("Find(%v) = %d, legacy %d", row, got, legacyIdx)
			}
		}
		if tab.Len() != len(legacy) {
			t.Fatalf("Len() = %d, legacy map has %d keys", tab.Len(), len(legacy))
		}
	})
}

// legacyFNV is FNV-64a over the encoded key bytes, inlined to keep the
// fuzz target free of test-helper indirection.
func legacyFNV(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
