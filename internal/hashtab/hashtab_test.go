package hashtab

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand/v2"
	"testing"
)

// legacyHash is the pre-refactor hash path: encode the projection as
// relation.Key does (8 big-endian bytes per value) and FNV-64a the
// string. Hash must match it bit for bit.
func legacyHash(row []int64, pos []int) uint64 {
	buf := make([]byte, 8*len(pos))
	for i, p := range pos {
		binary.BigEndian.PutUint64(buf[8*i:], uint64(row[p]))
	}
	h := fnv.New64a()
	_, _ = h.Write(buf)
	return h.Sum64()
}

func TestHashMatchesLegacyKeyPath(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 500; trial++ {
		row := make([]int64, 1+r.IntN(6))
		for i := range row {
			// Mix small, negative, and full-range values so every byte
			// lane of the encoding is exercised.
			switch r.IntN(3) {
			case 0:
				row[i] = int64(r.IntN(100))
			case 1:
				row[i] = -int64(r.IntN(100))
			default:
				row[i] = int64(r.Uint64())
			}
		}
		pos := make([]int, 1+r.IntN(len(row)))
		for i := range pos {
			pos[i] = r.IntN(len(row))
		}
		if got, want := Hash(row, pos), legacyHash(row, pos); got != want {
			t.Fatalf("Hash(%v, %v) = %#x, legacy key path gives %#x", row, pos, got, want)
		}
	}
	// HashVals must agree with the identity projection.
	row := []int64{3, -9, 1 << 40}
	if HashVals(row) != legacyHash(row, []int{0, 1, 2}) {
		t.Fatal("HashVals diverges from the identity projection")
	}
	// The empty projection is the FNV offset basis (empty Key string).
	if Hash(row, nil) != fnv.New64a().Sum64() {
		t.Fatal("empty projection must hash to the FNV-64a offset basis")
	}
}

func TestInsertFindFirstInsertOrder(t *testing.T) {
	tab := New(2, 0)
	rows := [][]int64{{1, 2, 9}, {1, 3, 9}, {1, 2, 7}, {4, 5, 0}}
	pos := []int{0, 1}
	// rows[0] and rows[2] share the (0,1) projection.
	wantIdx := []int{0, 1, 0, 2}
	wantFound := []bool{false, false, true, false}
	for i, row := range rows {
		idx, found := tab.Insert(row, pos)
		if idx != wantIdx[i] || found != wantFound[i] {
			t.Fatalf("Insert(%v) = (%d, %v), want (%d, %v)", row, idx, found, wantIdx[i], wantFound[i])
		}
	}
	if tab.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", tab.Len())
	}
	// Entries enumerate keys in first-insert order.
	wantKeys := [][]int64{{1, 2}, {1, 3}, {4, 5}}
	for i, want := range wantKeys {
		k := tab.Key(i)
		if k[0] != want[0] || k[1] != want[1] {
			t.Fatalf("Key(%d) = %v, want %v", i, k, want)
		}
	}
	if got := tab.Find([]int64{1, 3}, []int{0, 1}); got != 1 {
		t.Fatalf("Find existing = %d, want 1", got)
	}
	if got := tab.Find([]int64{9, 9}, []int{0, 1}); got != -1 {
		t.Fatalf("Find missing = %d, want -1", got)
	}
}

// TestForcedCollisions drives every key onto one hash value: distinct
// keys must still occupy distinct entries, and lookups must resolve by
// comparing key columns, not hashes.
func TestForcedCollisions(t *testing.T) {
	tab := newWithHash(1, 0, func([]int64, []int) uint64 { return 0xdead })
	const n = 200
	pos := []int{0}
	for i := int64(0); i < n; i++ {
		idx, found := tab.Insert([]int64{i}, pos)
		if found || idx != int(i) {
			t.Fatalf("Insert(%d) = (%d, %v) under forced collisions", i, idx, found)
		}
	}
	for i := int64(0); i < n; i++ {
		if got := tab.Find([]int64{i}, pos); got != int(i) {
			t.Fatalf("Find(%d) = %d under forced collisions", i, got)
		}
		if idx, found := tab.Insert([]int64{i}, pos); !found || idx != int(i) {
			t.Fatalf("re-Insert(%d) = (%d, %v) under forced collisions", i, idx, found)
		}
	}
	if tab.Find([]int64{n}, pos) != -1 {
		t.Fatal("absent key found under forced collisions")
	}
}

// TestGrowthRehash inserts far past the initial capacity and checks the
// load-factor bound and post-rehash lookups.
func TestGrowthRehash(t *testing.T) {
	tab := New(2, 0)
	start := tab.slotsLen()
	const n = 10000
	pos := []int{0, 1}
	for i := int64(0); i < n; i++ {
		tab.Insert([]int64{i, i * 3}, pos)
	}
	if tab.Len() != n {
		t.Fatalf("Len() = %d, want %d", tab.Len(), n)
	}
	if tab.slotsLen() <= start {
		t.Fatalf("slots never grew from %d", start)
	}
	if tab.Len()*loadDen > tab.slotsLen()*loadNum {
		t.Fatalf("load factor bound violated: %d entries in %d slots", tab.Len(), tab.slotsLen())
	}
	for i := int64(0); i < n; i++ {
		if got := tab.Find([]int64{i, i * 3}, pos); got != int(i) {
			t.Fatalf("Find(%d) = %d after rehash", i, got)
		}
	}
}

func TestArityZero(t *testing.T) {
	tab := New(0, 0)
	idx, found := tab.Insert(nil, nil)
	if idx != 0 || found {
		t.Fatalf("first 0-ary Insert = (%d, %v)", idx, found)
	}
	idx, found = tab.Insert([]int64{1, 2}, nil)
	if idx != 0 || !found {
		t.Fatalf("second 0-ary Insert = (%d, %v), want (0, true)", idx, found)
	}
	if tab.Len() != 1 || len(tab.Key(0)) != 0 {
		t.Fatalf("0-ary table Len=%d Key(0)=%v", tab.Len(), tab.Key(0))
	}
}

// TestSteadyStateZeroAlloc pins the headline contract: probing a built
// table — hits and misses — performs zero allocations.
func TestSteadyStateZeroAlloc(t *testing.T) {
	tab := New(2, 1024)
	pos := []int{0, 1}
	row := make([]int64, 2)
	for i := int64(0); i < 1024; i++ {
		row[0], row[1] = i, i^7
		tab.Insert(row, pos)
	}
	probe := func() {
		for i := int64(0); i < 1024; i++ {
			row[0], row[1] = i, i^7
			if tab.Find(row, pos) < 0 {
				t.Fatal("present key not found")
			}
			row[0] = i + 100000 // miss
			tab.Find(row, pos)
			row[0] = i // duplicate insert = pure probe
			if _, found := tab.Insert(row, pos); !found {
				t.Fatal("duplicate insert created an entry")
			}
		}
	}
	if avg := testing.AllocsPerRun(100, probe); avg != 0 {
		t.Fatalf("steady-state probes allocate %.2f allocs/run, want 0", avg)
	}
}

// BenchmarkProbe is the steady-state lookup benchmark BENCH_memory.json
// cites: 0 allocs/op is the acceptance bar.
func BenchmarkProbe(b *testing.B) {
	tab := New(2, 1<<16)
	pos := []int{0, 1}
	row := make([]int64, 2)
	for i := int64(0); i < 1<<16; i++ {
		row[0], row[1] = i, i*31
		tab.Insert(row, pos)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int64(i) & (1<<16 - 1)
		row[0], row[1] = v, v*31
		if tab.Find(row, pos) < 0 {
			b.Fatal("miss")
		}
	}
}
