// Package hashtab provides an open-addressing hash table keyed directly
// on projected int64 columns of arena-stored rows. It replaces the
// map[string] tables that the relation operators and the MPC simulator
// historically built over relation.Key — which materialized a fresh
// 8·k-byte string per tuple — with a probe path that allocates nothing
// in steady state.
//
// Hash compatibility is a hard contract: Hash(row, pos) is the FNV-64a
// hash of the big-endian 8-byte encoding of each projected value, in
// projection order — bit-identical to hashing relation.Key(row, pos)
// with hash/fnv. HashPartition destinations, golden reports, and trace
// histograms therefore do not move by a single byte when call sites
// switch from the string path to this package (the difftest oracle and
// FuzzHashMatchesLegacyKey enforce the equivalence).
//
// The table maps keys to dense entry indices 0..Len()-1 in first-insert
// order. Callers own the associated values as parallel slices indexed by
// entry — sums for aggregation, bucket heads for hash-join chains,
// nothing for set semantics — which keeps the table monomorphic and the
// per-entry storage exactly one cached hash plus the key columns.
// First-insert order doubles as the deterministic iteration order that
// the engine's byte-identical-output contract requires; iterating
// entries 0..Len()-1 visits keys exactly as a sequential scan first saw
// them.
package hashtab

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Load factor bound: grow when occupied*loadDen > slots*loadNum (3/4).
const (
	loadNum = 3
	loadDen = 4
)

// Hash returns the FNV-64a hash of the projection of row onto pos. It
// is the streaming equivalent of fnv over relation.Key(row, pos): each
// projected value contributes its 8 bytes in big-endian order.
func Hash(row []int64, pos []int) uint64 {
	h := uint64(offset64)
	for _, p := range pos {
		h = hashValue(h, uint64(row[p]))
	}
	return h
}

// HashVals hashes all columns of row in order (the identity
// projection), matching Hash(row, [0..len(row))).
func HashVals(row []int64) uint64 {
	h := uint64(offset64)
	for _, v := range row {
		h = hashValue(h, uint64(v))
	}
	return h
}

// hashValue folds one value's 8 big-endian bytes into an FNV-64a state.
func hashValue(h, v uint64) uint64 {
	h = (h ^ (v >> 56 & 0xff)) * prime64
	h = (h ^ (v >> 48 & 0xff)) * prime64
	h = (h ^ (v >> 40 & 0xff)) * prime64
	h = (h ^ (v >> 32 & 0xff)) * prime64
	h = (h ^ (v >> 24 & 0xff)) * prime64
	h = (h ^ (v >> 16 & 0xff)) * prime64
	h = (h ^ (v >> 8 & 0xff)) * prime64
	h = (h ^ (v & 0xff)) * prime64
	return h
}

// Table is an open-addressing (linear-probing) hash table over fixed-
// width int64 keys. The zero value is not usable; call New.
type Table struct {
	arity  int     // key width in columns
	keys   []int64 // stride-arity key storage, entry i at keys[i*arity:]
	hashes []uint64
	slots  []int32 // entry index + 1; 0 = empty
	mask   uint64
	// hashFn is a test seam for forcing hash collisions; nil selects
	// Hash. Production constructors leave it nil so the hot path pays
	// one predictable branch, not an indirect call.
	hashFn func(row []int64, pos []int) uint64
}

// New returns a table for keys of the given column count, pre-sized for
// about hint entries.
func New(arity, hint int) *Table {
	if arity < 0 {
		panic("hashtab: negative key arity")
	}
	size := 8
	for size*loadNum < hint*loadDen {
		size <<= 1
	}
	t := &Table{arity: arity, slots: getSlots(size), mask: uint64(size - 1)}
	if hint > 0 {
		t.hashes = getHashes(hint)
		t.keys = getKeys(hint * arity)
	}
	return t
}

// newWithHash is the test-only constructor that substitutes the hash
// function, letting the tests force distinct keys onto equal hashes.
func newWithHash(arity, hint int, fn func([]int64, []int) uint64) *Table {
	t := New(arity, hint)
	t.hashFn = fn
	return t
}

// Len returns the number of distinct keys inserted.
func (t *Table) Len() int { return len(t.hashes) }

// Key returns entry i's key columns. The returned slice aliases the
// table's key arena; callers must not mutate it.
func (t *Table) Key(i int) []int64 {
	return t.keys[i*t.arity : (i+1)*t.arity : (i+1)*t.arity]
}

func (t *Table) hashOf(row []int64, pos []int) uint64 {
	if t.hashFn != nil {
		return t.hashFn(row, pos)
	}
	return Hash(row, pos)
}

// equalAt reports whether entry e's key equals the projection of row
// onto pos.
func (t *Table) equalAt(e int, row []int64, pos []int) bool {
	k := t.keys[e*t.arity:]
	for i, p := range pos {
		if k[i] != row[p] {
			return false
		}
	}
	return true
}

// Find returns the entry index of the projection of row onto pos, or -1
// when the key is absent. len(pos) must equal the table arity. Find
// performs no allocation.
func (t *Table) Find(row []int64, pos []int) int {
	h := t.hashOf(row, pos)
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		e := t.slots[s]
		if e == 0 {
			return -1
		}
		if t.hashes[e-1] == h && t.equalAt(int(e-1), row, pos) {
			return int(e - 1)
		}
	}
}

// Insert adds the projection of row onto pos if absent. It returns the
// key's dense entry index and whether the key was already present.
// Entry indices are assigned in first-insert order, starting at 0.
func (t *Table) Insert(row []int64, pos []int) (idx int, found bool) {
	if len(pos) != t.arity {
		panic("hashtab: projection width != table arity")
	}
	h := t.hashOf(row, pos)
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		e := t.slots[s]
		if e == 0 {
			idx = len(t.hashes)
			if (idx+1)*loadDen > len(t.slots)*loadNum {
				t.grow()
				for s = h & t.mask; t.slots[s] != 0; s = (s + 1) & t.mask {
				}
			}
			t.slots[s] = int32(idx + 1)
			t.hashes = append(t.hashes, h)
			for _, p := range pos {
				t.keys = append(t.keys, row[p])
			}
			return idx, false
		}
		if t.hashes[e-1] == h && t.equalAt(int(e-1), row, pos) {
			return int(e - 1), true
		}
	}
}

// grow doubles the slot array and reinserts all entries from their
// cached hashes (keys and entry indices are untouched).
func (t *Table) grow() {
	size := len(t.slots) * 2
	old := t.slots
	t.slots = getSlots(size)
	putSlots(old)
	t.mask = uint64(size - 1)
	for e, h := range t.hashes {
		s := h & t.mask
		for t.slots[s] != 0 {
			s = (s + 1) & t.mask
		}
		t.slots[s] = int32(e + 1)
	}
}

// slotsLen reports the slot-array capacity (test hook for the growth
// tests).
func (t *Table) slotsLen() int { return len(t.slots) }
