package hashtab

import (
	"sync"
	"sync/atomic"

	"coverpack/internal/trace"
)

// Cross-run bucket recycling.
//
// Every simulator run builds and discards many short-lived tables
// (group counts, per-fragment statistics, local aggregation), each
// paying for a fresh slot array plus hash/key arenas. The pools below
// recycle those buffers across runs so a sweep's 2nd..Nth cell stops
// re-allocating them.
//
// Ownership contract: Release may only be called on tables that are
// provably local — built and dropped inside one function. Retained key
// indexes (internal/relation/index.go) live as long as their relation
// and are shared across goroutines via atomic.Value; they are never
// released.
//
// Determinism: recycled slot arrays are zeroed before reuse, and
// hash/key arenas are append targets, so a recycled table behaves
// bit-identically to a fresh one. The counters are trace.PoolStats
// diagnostics only.

// Slot arrays are pooled by exact power-of-two size class; hash and key
// arenas by capacity class like the relation arena pool.
const (
	minSlotBits = 3  // slot arrays start at 8 (New's minimum)
	maxSlotBits = 22 // 4 Mi slots = 16 MiB
	slotClasses = maxSlotBits - minSlotBits + 1
)

var (
	slotPools [slotClasses]sync.Pool
	hashPools [slotClasses]sync.Pool // []uint64 by capacity class
	keyPools  [slotClasses]sync.Pool // []int64 by capacity class

	poolingOff atomic.Bool

	poolGets     atomic.Uint64
	poolHits     atomic.Uint64
	poolMisses   atomic.Uint64
	poolPuts     atomic.Uint64
	poolDiscards atomic.Uint64
)

// SetPooling toggles cross-run bucket recycling globally. Off, the
// constructors degrade to plain make and Release discards — the
// pre-pooling behavior.
func SetPooling(on bool) { poolingOff.Store(!on) }

// PoolingEnabled reports the current toggle state.
func PoolingEnabled() bool { return !poolingOff.Load() }

// PoolStats snapshots the bucket-pool counters.
func PoolStats() trace.PoolStats {
	return trace.PoolStats{
		Gets:     poolGets.Load(),
		Hits:     poolHits.Load(),
		Misses:   poolMisses.Load(),
		Puts:     poolPuts.Load(),
		Discards: poolDiscards.Load(),
	}
}

// ResetPoolStats zeroes the bucket-pool counters (test/bench seam).
func ResetPoolStats() {
	poolGets.Store(0)
	poolHits.Store(0)
	poolMisses.Store(0)
	poolPuts.Store(0)
	poolDiscards.Store(0)
}

// slotClass returns the class index for an exact power-of-two slot
// count, or -1 when out of range.
func slotClass(size int) int {
	for bits := minSlotBits; bits <= maxSlotBits; bits++ {
		if 1<<bits == size {
			return bits - minSlotBits
		}
	}
	return -1
}

// getSlots returns a zeroed []int32 of exactly size entries (size must
// be a power of two ≥ 8).
func getSlots(size int) []int32 {
	if poolingOff.Load() {
		return make([]int32, size)
	}
	poolGets.Add(1)
	cl := slotClass(size)
	if cl < 0 {
		poolMisses.Add(1)
		return make([]int32, size)
	}
	if v := slotPools[cl].Get(); v != nil {
		poolHits.Add(1)
		s := *v.(*[]int32)
		clear(s)
		return s
	}
	poolMisses.Add(1)
	return make([]int32, size)
}

func putSlots(s []int32) {
	if s == nil {
		return
	}
	if poolingOff.Load() {
		poolDiscards.Add(1)
		return
	}
	cl := slotClass(len(s))
	if cl < 0 {
		poolDiscards.Add(1)
		return
	}
	poolPuts.Add(1)
	slotPools[cl].Put(&s)
}

// capClass returns the largest class whose capacity (1<<bits entries)
// fits within c, or -1 when c is below the smallest class. Like the
// relation arena pool, releasing into the floor class keeps Get's
// capacity guarantee.
func capClass(c int) int {
	if c < 1<<minSlotBits {
		return -1
	}
	bits := minSlotBits
	for bits < maxSlotBits && 1<<(bits+1) <= c {
		bits++
	}
	return bits - minSlotBits
}

// ceilClass returns the smallest class with capacity ≥ n, or -1.
func ceilClass(n int) int {
	bits := minSlotBits
	for bits <= maxSlotBits && 1<<bits < n {
		bits++
	}
	if bits > maxSlotBits {
		return -1
	}
	return bits - minSlotBits
}

// getHashes returns a zero-length []uint64 with capacity ≥ n.
func getHashes(n int) []uint64 {
	if n <= 0 {
		return nil
	}
	if poolingOff.Load() {
		return make([]uint64, 0, n)
	}
	poolGets.Add(1)
	cl := ceilClass(n)
	if cl < 0 {
		poolMisses.Add(1)
		return make([]uint64, 0, n)
	}
	if v := hashPools[cl].Get(); v != nil {
		poolHits.Add(1)
		return (*v.(*[]uint64))[:0]
	}
	poolMisses.Add(1)
	return make([]uint64, 0, 1<<(cl+minSlotBits))
}

func putHashes(h []uint64) {
	if h == nil {
		return
	}
	if poolingOff.Load() {
		poolDiscards.Add(1)
		return
	}
	cl := capClass(cap(h))
	if cl < 0 {
		poolDiscards.Add(1)
		return
	}
	poolPuts.Add(1)
	h = h[:0]
	hashPools[cl].Put(&h)
}

// getKeys returns a zero-length []int64 with capacity ≥ n.
func getKeys(n int) []int64 {
	if n <= 0 {
		return nil
	}
	if poolingOff.Load() {
		return make([]int64, 0, n)
	}
	poolGets.Add(1)
	cl := ceilClass(n)
	if cl < 0 {
		poolMisses.Add(1)
		return make([]int64, 0, n)
	}
	if v := keyPools[cl].Get(); v != nil {
		poolHits.Add(1)
		return (*v.(*[]int64))[:0]
	}
	poolMisses.Add(1)
	return make([]int64, 0, 1<<(cl+minSlotBits))
}

func putKeys(k []int64) {
	if k == nil {
		return
	}
	if poolingOff.Load() {
		poolDiscards.Add(1)
		return
	}
	cl := capClass(cap(k))
	if cl < 0 {
		poolDiscards.Add(1)
		return
	}
	poolPuts.Add(1)
	k = k[:0]
	keyPools[cl].Put(&k)
}

// Release returns the table's buffers to the cross-run pools and leaves
// the table unusable. Only call it on provably local tables (built and
// dropped within one function) — never on retained key indexes or any
// table that may still be probed.
func (t *Table) Release() {
	putSlots(t.slots)
	putHashes(t.hashes)
	putKeys(t.keys)
	t.slots, t.hashes, t.keys = nil, nil, nil
	t.mask = 0
}
