package yannakakis

import (
	"testing"

	"coverpack/internal/hypergraph"
	"coverpack/internal/mpc"
	"coverpack/internal/workload"
)

func TestRunCountsExactly(t *testing.T) {
	for _, tc := range []struct {
		q   *hypergraph.Query
		n   int
		dom int64
	}{
		{hypergraph.PathJoin(3), 300, 30},
		{hypergraph.PathJoin(5), 200, 30},
		{hypergraph.StarJoin(3), 150, 30},
		{hypergraph.Figure4Join(), 80, 30},
		{hypergraph.SemiJoinExample(), 200, 250}, // unary relations need dom >= n
	} {
		c := mpc.NewCluster(8)
		in := workload.Uniform(tc.q, tc.n, tc.dom, 11)
		res, err := Run(c.Root(), in)
		if err != nil {
			t.Fatal(err)
		}
		if want := in.JoinSize(); res.Emitted != want {
			t.Errorf("%s: emitted %d, want %d", tc.q.Name(), res.Emitted, want)
		}
		if st := c.Stats(); st.Rounds == 0 || st.MaxLoad == 0 {
			t.Errorf("%s: no cost recorded: %v", tc.q.Name(), st)
		}
	}
}

func TestRunRejectsCyclic(t *testing.T) {
	c := mpc.NewCluster(4)
	in := workload.Matching(hypergraph.TriangleJoin(), 10)
	if _, err := Run(c.Root(), in); err == nil {
		t.Fatal("expected error for cyclic query")
	}
}

func TestRunDisconnectedQuery(t *testing.T) {
	q := hypergraph.MustParse("disc", "R1(A,B) R2(C,D)")
	in := workload.Uniform(q, 20, 10, 3)
	c := mpc.NewCluster(4)
	res, err := Run(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if want := in.JoinSize(); res.Emitted != want {
		t.Fatalf("emitted %d, want %d", res.Emitted, want)
	}
}

func TestSemiJoinExampleLinearLoad(t *testing.T) {
	// The Section 1.3 example: two rounds of semi-joins give linear
	// load. Check the load stays ~N/p-ish rather than N/sqrt(p): with
	// N=4000, p=16, N/p=250 vs N/sqrt(p)=1000.
	q := hypergraph.SemiJoinExample()
	in := workload.Uniform(q, 4000, 100000, 5)
	c := mpc.NewCluster(16)
	res, err := Run(c.Root(), in)
	if err != nil {
		t.Fatal(err)
	}
	if want := in.JoinSize(); res.Emitted != want {
		t.Fatalf("emitted %d, want %d", res.Emitted, want)
	}
	// Hash imbalance allows a modest constant over N/p.
	if load := c.Stats().MaxLoad; load > 4*4000/16 {
		t.Fatalf("load %d not linear (N/p = %d)", load, 4000/16)
	}
}

func TestOutputSensitivity(t *testing.T) {
	// Yannakakis load includes an OUT/p term: a high-output instance
	// must show higher load than a low-output one at equal N.
	q := hypergraph.PathJoin(3)
	small := workload.Matching(q, 1200) // OUT = N
	big, err := workload.AGMWorstCase(q, 1200)
	if err != nil {
		t.Fatal(err)
	}
	cs := mpc.NewCluster(16)
	if _, err := Run(cs.Root(), small); err != nil {
		t.Fatal(err)
	}
	cb := mpc.NewCluster(16)
	if _, err := Run(cb.Root(), big); err != nil {
		t.Fatal(err)
	}
	if cb.Stats().MaxLoad <= cs.Stats().MaxLoad {
		t.Fatalf("worst-case load %d not above matching load %d",
			cb.Stats().MaxLoad, cs.Stats().MaxLoad)
	}
}
