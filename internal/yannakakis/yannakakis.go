// Package yannakakis implements the parallel Yannakakis algorithm, the
// classic output-sensitive baseline the paper discusses in Section 1.3:
// semi-join reduction over a join tree (removing all dangling tuples),
// followed by pairwise joins up the tree with hash partitioning. Its
// load is O(N/p + OUT/p) modulo join-key skew — output-optimal when
// OUT = O(p·N), but degenerating toward the AGM bound O(N^{ρ*}/p) in
// the worst case, which is exactly the gap the paper's worst-case
// optimal algorithm (internal/core) closes.
//
// The two-round semi-join evaluation of the Section 1.3 example
// (R1(A) ⋈ R2(A,B) ⋈ R3(B) with linear load) is this algorithm on a
// two-level join tree.
package yannakakis

import (
	"fmt"

	"coverpack/internal/hypergraph"
	"coverpack/internal/mpc"
	"coverpack/internal/primitives"
	"coverpack/internal/relation"
)

// Result reports one execution.
type Result struct {
	// Emitted is the number of join results (each emitted exactly once).
	Emitted int64
}

// Run executes parallel Yannakakis on the group. The query must be
// acyclic. Join results are emitted at the servers holding the final
// root-relation partitions; emission itself is free per the model, but
// every intermediate tuple movement is charged.
func Run(g *mpc.Group, in *relation.Instance) (*Result, error) {
	q := in.Query
	tree, ok := hypergraph.GYO(q)
	if !ok {
		return nil, fmt.Errorf("yannakakis: %s is not acyclic", q.Name())
	}
	children := make([][]int, q.NumEdges())
	for e := 0; e < q.NumEdges(); e++ {
		children[e] = tree.Children(e)
	}

	// Scatter and semi-join reduce (removes dangling tuples in O(1)
	// rounds with load O(N/p) + key-skew). ScatterDedup streams the
	// dedup straight into the free initial placement.
	rels := make([]*mpc.DistRelation, q.NumEdges())
	for e := range rels {
		rels[e] = g.ScatterDedup(in.Rel(e))
	}
	rels = primitives.SemiJoinReduceTree(g, rels, children, tree.Roots())

	// Join up the tree: each node joins the already-joined subtrees of
	// its children. Partitioned hash joins on the parent-child common
	// attributes; a Cartesian child (no common attributes) is handled
	// by broadcasting the smaller side.
	var joinUp func(e int) *mpc.DistRelation
	joinUp = func(e int) *mpc.DistRelation {
		acc := rels[e]
		for _, c := range children[e] {
			sub := joinUp(c)
			acc = pairJoin(g, acc, sub)
		}
		return acc
	}

	var emitted int64
	g.Span("join up", func() {
		for _, root := range tree.Roots() {
			full := joinUp(root)
			// Roots of distinct components multiply; emit the Cartesian
			// combination count without materializing across components.
			if emitted == 0 {
				emitted = int64(full.Len())
			} else {
				emitted *= int64(full.Len())
			}
		}
	})
	return &Result{Emitted: emitted}, nil
}

// pairJoin joins two distributed relations on their common attributes.
func pairJoin(g *mpc.Group, a, b *mpc.DistRelation) *mpc.DistRelation {
	common := a.Schema.Common(b.Schema)
	if len(common) == 0 {
		// Broadcast the smaller side, join locally.
		small, large := a, b
		if b.Len() < a.Len() {
			small, large = b, a
		}
		bs := g.Broadcast(small)
		out := mpc.NewDist(a.Schema.Union(b.Schema), g.Size())
		g.Fork(len(large.Frags), func(i int) {
			out.Frags[i] = large.Frags[i].Join(bs.Frags[i])
		})
		return out
	}
	ap := g.HashPartition(a, common)
	bp := g.HashPartition(b, common)
	out := mpc.NewDist(a.Schema.Union(b.Schema), g.Size())
	g.Fork(len(ap.Frags), func(i int) {
		out.Frags[i] = ap.Frags[i].JoinPar(bp.Frags[i], g)
	})
	// Joined rows keep the join-key values of their inputs, so the
	// output stays partitioned on common — the parent's pairJoin on the
	// same key (frequent in path/star trees) elides its exchange. The
	// semi-join phase has usually marked a and b already, turning ap/bp
	// into identity exchanges too.
	out.MarkPartitioned(common)
	return out
}
