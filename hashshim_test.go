package coverpack_test

import (
	"testing"

	"coverpack"
	"coverpack/internal/hashtab"
	"coverpack/internal/mpc"
	"coverpack/internal/relation"
)

// The arena refactor replaced the string-key hash path (relation.Key +
// FNV-64a) with hashtab.Hash over projected columns. HashPartition
// destinations are part of the determinism contract — golden reports
// and trace histograms depend on where every tuple lands — so this test
// drives the new hash against the legacy reference shim
// (mpc.LegacyHashDest, which still encodes the key string) over real
// catalog workloads, every projection of each schema, and a spread of
// group sizes including non-powers of two.

func TestHashDestinationsMatchLegacyKeyPath(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 8, 16, 101}
	for _, entry := range coverpack.Catalog() {
		in := coverpack.Uniform(entry.Query, 300, 400, 42)
		for e, r := range in.Relations {
			schema := r.Schema()
			arity := schema.Len()
			// Every non-empty prefix and every single column, plus the
			// reversed full projection, covers the pos shapes used by
			// the operators (common-attribute sets are sorted prefixes
			// of Positions output, but order must not matter for the
			// equivalence either).
			var projections [][]int
			for k := 1; k <= arity; k++ {
				pre := make([]int, k)
				for i := range pre {
					pre[i] = i
				}
				projections = append(projections, pre)
			}
			for p := 0; p < arity; p++ {
				projections = append(projections, []int{p})
			}
			if arity > 1 {
				rev := make([]int, arity)
				for i := range rev {
					rev[i] = arity - 1 - i
				}
				projections = append(projections, rev)
			}
			for i := 0; i < r.Len(); i++ {
				row := r.Row(i)
				for _, pos := range projections {
					h := hashtab.Hash(row, pos)
					for _, size := range sizes {
						got := int(h % uint64(size))
						want := mpc.LegacyHashDest(row, pos, size)
						if got != want {
							t.Fatalf("%s rel %d row %d pos %v size %d: hashtab dest %d, legacy dest %d",
								entry.Query.Name(), e, i, pos, size, got, want)
						}
					}
				}
			}
		}
	}
}

// TestHashPartitionMatchesLegacyDestinations partitions a distributed
// relation and checks every fragment's membership against a reference
// partition computed with the legacy shim — the end-to-end form of the
// destination equivalence (fragment contents and order, not just the
// hash values).
func TestHashPartitionMatchesLegacyDestinations(t *testing.T) {
	q := coverpack.Catalog()[0].Query
	in := coverpack.Uniform(q, 500, 300, 7)
	r := in.Relations[0]
	attrs := r.Schema().Attrs()[:1]
	pos := r.Schema().Positions(attrs)
	const p = 16

	c := mpc.NewCluster(p)
	d := c.Root().Scatter(r)

	// Reference: sequential pass over the scattered fragments with the
	// legacy destination function.
	want := make([]*relation.Relation, p)
	for i := range want {
		want[i] = relation.New(r.Schema())
	}
	for _, f := range d.Frags {
		for i := 0; i < f.Len(); i++ {
			tp := f.Row(i)
			want[mpc.LegacyHashDest(tp, pos, p)].Add(tp)
		}
	}

	got := c.Root().HashPartition(d, attrs)
	for s := 0; s < p; s++ {
		if !got.Frags[s].Equal(want[s]) {
			t.Fatalf("fragment %d diverged from legacy partition: got %d rows, want %d",
				s, got.Frags[s].Len(), want[s].Len())
		}
		// Order within the fragment must match the sequential append
		// order too (byte-identity, not just set equality).
		for i := 0; i < got.Frags[s].Len(); i++ {
			g, w := got.Frags[s].Row(i), want[s].Row(i)
			for j := range g {
				if g[j] != w[j] {
					t.Fatalf("fragment %d row %d: got %v, want %v", s, i, g, w)
				}
			}
		}
	}
}
