package coverpack

import (
	"io"

	"coverpack/internal/trace"
)

// This file re-exports the internal/trace recording layer so library
// users can capture and render execution traces without importing
// internal packages. See ExecuteTraced for the entry point.

// TraceRecorder receives span and exchange emissions from the MPC
// simulator during an ExecuteTraced run.
type TraceRecorder = trace.Recorder

// TraceCollector is the TraceRecorder that builds a span tree in
// memory; create one with NewTraceCollector, pass it to ExecuteTraced,
// then render its Root with WriteTrace or aggregate it with PhaseTable.
type TraceCollector = trace.Collector

// TraceSpan is one node of a collected span tree.
type TraceSpan = trace.Span

// PhaseRow is one line of the per-phase load-attribution table.
type PhaseRow = trace.PhaseRow

// CacheStats reports the exchange-plan cache counters of one execution
// (see ExecOptions.PlanStats). The counters are diagnostics only — they
// never influence Reports, Stats, or traces.
type CacheStats = trace.CacheStats

// TraceFormat names a trace rendering: jsonl, chrome, or heatmap.
type TraceFormat = trace.Format

const (
	// TraceJSONL renders one JSON object per span/exchange.
	TraceJSONL = trace.FormatJSONL
	// TraceChrome renders Chrome trace-event JSON for
	// about:tracing/Perfetto.
	TraceChrome = trace.FormatChrome
	// TraceHeatmap renders an ASCII per-round × per-server load heatmap.
	TraceHeatmap = trace.FormatHeatmap
)

// NewTraceCollector returns an empty trace collector.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// ParseTraceFormat validates a format name (e.g. a -trace-format flag).
func ParseTraceFormat(s string) (TraceFormat, error) { return trace.ParseFormat(s) }

// WriteTrace renders a collected span tree in the given format.
func WriteTrace(w io.Writer, root *TraceSpan, format TraceFormat) error {
	return trace.Write(w, root, format)
}

// PhaseTable aggregates a collected span tree into per-phase load
// attribution rows, sorted by attributed units descending.
func PhaseTable(root *TraceSpan) []PhaseRow { return trace.PhaseTable(root) }

// AttributedShare is the fraction of total units attributed to named
// phases in a PhaseTable result.
func AttributedShare(rows []PhaseRow) float64 { return trace.AttributedShare(rows) }
