package coverpack_test

import (
	"fmt"
	"os"
	"testing"

	"coverpack"
	"coverpack/internal/hypergraph"
	"coverpack/internal/relation"
)

// Spill arms of the differential determinism oracle. Spilling is a
// pure placement lever — where exchange-output bytes live, never what
// any run computes — so a run with arenas parked to disk under an
// aggressively small memory budget must produce the same report, the
// same trace span tree, and the same per-phase load attribution as the
// fully resident reference, bit for bit, at every worker count. The
// arms double as the acceptance check that out-of-core execution
// actually happens: the park counter must move, and the sequential
// arm's retained peak must respect the budget.

// spillArmBudget is small enough that every oracle instance's exchange
// working set exceeds it, forcing real parks.
const spillArmBudget = 4 << 10

// spillTracedRun executes one spill-mode configuration with a
// collector attached.
func spillTracedRun(t *testing.T, alg coverpack.Algorithm, in *coverpack.Instance, p int, eo coverpack.ExecOptions) (*coverpack.Report, *coverpack.TraceSpan, []coverpack.PhaseRow, error) {
	t.Helper()
	col := coverpack.NewTraceCollector()
	eo.Recorder = col
	rep, err := coverpack.ExecuteOpts(alg, in, p, eo)
	if err != nil {
		return nil, nil, nil, err
	}
	root := col.Root()
	return rep, root, coverpack.PhaseTable(root), nil
}

// runSpillOracle compares spill-on arms against the fully resident
// reference for every algorithm accepting the instance's query.
func runSpillOracle(t *testing.T, in *coverpack.Instance, p int) {
	for _, alg := range oracleAlgorithms {
		refRep, refRoot, refPhases, err := spillTracedRun(t, alg, in, p,
			coverpack.ExecOptions{Workers: 1, Spilling: coverpack.SpillOff})
		if err != nil {
			continue // algorithm rejects this query class
		}
		for _, workers := range append([]int{1}, oracleWorkerSet()...) {
			workers := workers
			label := fmt.Sprintf("%s/%s/workers=%d/spill-on", in.Query.Name(), alg, workers)
			rep, root, phases, err := spillTracedRun(t, alg, in, p, coverpack.ExecOptions{
				Workers:          workers,
				Spilling:         coverpack.SpillOn,
				SpillDir:         t.TempDir(),
				SpillBudgetBytes: spillArmBudget,
			})
			if err != nil {
				t.Errorf("%s: run failed where the resident reference succeeded: %v", label, err)
				continue
			}
			assertRunsAgree(t, label, refRep, refRoot, refPhases, rep, root, phases)
		}
	}
}

// TestSpillDeterminismOracle: a catalog subset big enough that every
// algorithm's exchanges overflow the spill budget. Byte-identity plus
// the two acceptance gauges (parks nonzero, sequential peak within
// budget) in one sweep.
func TestSpillDeterminismOracle(t *testing.T) {
	before := relation.SpillStats()
	coverpack.ResetSpillRetainedPeak()
	for _, q := range []*hypergraph.Query{
		hypergraph.SemiJoinExample(),
		hypergraph.Line3Join(),
		hypergraph.TriangleJoin(),
		hypergraph.StarDualJoin(3),
	} {
		q := q
		t.Run(q.Name(), func(t *testing.T) {
			in := coverpack.Uniform(q, 1600, 2000, 7)
			runSpillOracle(t, in, 8)
		})
	}
	sc := coverpack.SpillStats()
	if sc.Parks == before.Parks {
		t.Fatal("spill arms parked nothing: the out-of-core path never engaged")
	}
	if sc.BytesWritten == before.BytesWritten || sc.BytesRead == before.BytesRead {
		t.Fatal("spill arms moved no bytes through segment files")
	}
}

// TestSpillSequentialPeakWithinBudget pins the budget enforcement the
// oracle relies on: with one worker, every admission parks down to the
// budget, so the process-wide retained peak cannot exceed it.
func TestSpillSequentialPeakWithinBudget(t *testing.T) {
	coverpack.ResetSpillRetainedPeak()
	in := coverpack.Uniform(hypergraph.TriangleJoin(), 2000, 2500, 3)
	if _, err := coverpack.ExecuteOpts(coverpack.AlgTriangle, in, 8, coverpack.ExecOptions{
		Workers:          1,
		Spilling:         coverpack.SpillOn,
		SpillDir:         t.TempDir(),
		SpillBudgetBytes: spillArmBudget,
	}); err != nil {
		t.Fatal(err)
	}
	peak := coverpack.SpillRetainedPeakBytes()
	if peak == 0 {
		t.Fatal("no spill admission recorded a retained peak")
	}
	if peak > spillArmBudget {
		t.Fatalf("sequential retained peak %d bytes exceeds the %d-byte budget", peak, spillArmBudget)
	}
}

// TestSpillHeavyHubSkew drives the spill arms over a skewed instance:
// heavy/light splits exercise Distribute and SendTo placements the
// uniform oracle misses.
func TestSpillHeavyHubSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("skew instances skipped in -short mode")
	}
	for _, q := range []*hypergraph.Query{
		hypergraph.SemiJoinExample(),
		hypergraph.TriangleJoin(),
	} {
		q := q
		t.Run(q.Name(), func(t *testing.T) {
			runSpillOracle(t, coverpack.HeavyHub(q, 1500), 8)
		})
	}
}

// TestSpillDirLeavesNothingBehind: ExecuteOpts owns its per-run spill
// subdirectory; after the run returns, the caller's directory is empty
// again.
func TestSpillDirLeavesNothingBehind(t *testing.T) {
	dir := t.TempDir()
	in := coverpack.Uniform(hypergraph.Line3Join(), 1600, 2000, 7)
	if _, err := coverpack.ExecuteOpts(coverpack.AlgYannakakis, in, 8, coverpack.ExecOptions{
		Spilling:         coverpack.SpillOn,
		SpillDir:         dir,
		SpillBudgetBytes: spillArmBudget,
	}); err != nil {
		t.Fatal(err)
	}
	assertEmptyDir(t, dir)
}

func assertEmptyDir(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d entries left in spill dir after the run", len(ents))
	}
}
