package coverpack_test

import (
	"testing"

	"coverpack"
	"coverpack/internal/hypergraph"
)

// Plan-compile-cache oracle: for every catalog query × algorithm ×
// worker count, a run with the compile cache forced OFF (the pre-cache
// compilation path) is the reference, and cache-on runs — cold (just
// after a full reset) and warm (entries populated by the cold run) —
// must match it byte for byte across the report, the span tree, and
// the per-phase load attribution. Warm arms are where isomorphic
// sharing and equivariant remapping actually serve artifacts, so a
// remap bug cannot hide.

// planCompileRun executes one arm with a collector attached.
func planCompileRun(t *testing.T, alg coverpack.Algorithm, in *coverpack.Instance, p, workers int,
	mode coverpack.PlanCompileMode) (*coverpack.Report, *coverpack.TraceSpan, []coverpack.PhaseRow, error) {
	t.Helper()
	col := coverpack.NewTraceCollector()
	rep, err := coverpack.ExecuteOpts(alg, in, p, coverpack.ExecOptions{
		Workers:     workers,
		Recorder:    col,
		PlanCompile: mode,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	root := col.Root()
	return rep, root, coverpack.PhaseTable(root), nil
}

// TestPlanCompileOracleCatalog sweeps the full catalog × algorithm ×
// worker matrix.
func TestPlanCompileOracleCatalog(t *testing.T) {
	defer coverpack.ResetPlanCompileCache()
	defer coverpack.ResetAnalyzeCache()
	for _, entry := range coverpack.Catalog() {
		entry := entry
		t.Run(entry.Query.Name(), func(t *testing.T) {
			in := coverpack.Uniform(entry.Query, 400, 500, 1)
			for _, alg := range oracleAlgorithms {
				refRep, refRoot, refPhases, err := planCompileRun(t, alg, in, 8, 1, coverpack.PlanCompileOff)
				if err != nil {
					// The algorithm rejects this query class; nothing to
					// compare.
					continue
				}
				for _, w := range []int{1, 4} {
					coverpack.ResetPlanCompileCache()
					coverpack.ResetAnalyzeCache()
					for _, arm := range []string{"cold", "warm"} {
						rep, root, phases, err := planCompileRun(t, alg, in, 8, w, coverpack.PlanCompileOn)
						if err != nil {
							t.Errorf("%s/%s workers=%d %s: run failed where the reference succeeded: %v",
								entry.Query.Name(), alg, w, arm, err)
							continue
						}
						label := entry.Query.Name() + "/" + alg.String() + "/compile-" + arm
						assertRunsAgree(t, label, refRep, refRoot, refPhases, rep, root, phases)
					}
				}
			}
		})
	}
}

// TestPlanCompileIsomorphicQueries pins the isomorphic-sharing
// contract end to end: a renamed catalog query shares the canonical
// shape entry with the original (the hit counters prove it) and its
// runs produce the identically-shaped report — the instance generator
// and the executor see the same structure, so everything measurable
// matches modulo the name remap.
func TestPlanCompileIsomorphicQueries(t *testing.T) {
	coverpack.ResetPlanCompileCache()
	coverpack.ResetAnalyzeCache()
	defer coverpack.ResetPlanCompileCache()
	defer coverpack.ResetAnalyzeCache()

	base := hypergraph.Line3Join()
	ren := hypergraph.MustParse("line3-iso", "T1(P,Q) T2(Q,R) T3(R,S)")
	if k1, k2 := coverpack.CanonicalKey(base), coverpack.CanonicalKey(ren); k1 == "" || k1 != k2 {
		t.Fatalf("renamed query did not share the canonical key: %q vs %q", k1, k2)
	}

	for _, alg := range []coverpack.Algorithm{
		coverpack.AlgAcyclicOptimal, coverpack.AlgSkewAware, coverpack.AlgYannakakis,
	} {
		inBase := coverpack.Uniform(base, 400, 500, 1)
		inRen := coverpack.Uniform(ren, 400, 500, 1)

		repBase, err := coverpack.Execute(alg, inBase, 8)
		if err != nil {
			t.Fatalf("%s on base: %v", alg, err)
		}
		before := coverpack.PlanCompileCacheStats()
		repRen, err := coverpack.Execute(alg, inRen, 8)
		if err != nil {
			t.Fatalf("%s on renamed: %v", alg, err)
		}
		after := coverpack.PlanCompileCacheStats()

		rb, rr := *repBase, *repRen
		rb.Stats.SeqFallback, rr.Stats.SeqFallback = false, false
		if rb != rr {
			t.Errorf("%s: isomorphic runs diverged:\n  base:    emitted=%d stats={%v} L=%d\n  renamed: emitted=%d stats={%v} L=%d",
				alg, repBase.Emitted, repBase.Stats, repBase.L, repRen.Emitted, repRen.Stats, repRen.L)
		}
		if after.IsoHits <= before.IsoHits {
			t.Errorf("%s: renamed run recorded no isomorphic hits (before=%d after=%d)",
				alg, before.IsoHits, after.IsoHits)
		}
	}
}
