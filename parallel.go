package coverpack

import "coverpack/internal/relation"

// This file re-exports the intra-operator parallelism layer: the
// morsel-parallel relation kernels (sort, merge, dedup, semi-join,
// join, reduce) that fan local operator work out over the cluster's
// worker pool. Parallel kernels are a pure wall-clock lever — every
// kernel's output is byte-identical to its sequential reference at any
// worker count (the difftest oracle runs the full matrix both ways to
// pin it), and at Workers <= 1 they never engage.

// SetParKernels toggles the morsel-parallel kernel paths process-wide.
// Off, every local operator runs its sequential reference
// implementation even on parallel clusters. On by default; the switch
// mirrors SetStreaming.
func SetParKernels(on bool) { relation.SetParKernels(on) }

// ParKernelsEnabled reports whether parallel kernels are active.
func ParKernelsEnabled() bool { return relation.ParKernelsEnabled() }

// ParCounters snapshots the parallel-kernel diagnostics: kernels that
// took a parallel path, and parallel-eligible kernels that stayed
// sequential under the cost cutoff. Diagnostics only — never part of a
// measured result.
type ParCounters = relation.ParCounters

// ParStats snapshots the parallel-kernel counters.
func ParStats() ParCounters { return relation.ParStats() }

// ResetParStats zeroes the parallel-kernel counters (test and
// benchmark seam).
func ResetParStats() { relation.ResetParStats() }

// ParKernelMode selects the parallel-kernel behavior of one execution
// (see ExecOptions.ParKernels).
type ParKernelMode int

const (
	// ParKernelDefault follows the process-wide switch (on unless
	// SetParKernels(false) was called). The zero value, so plain
	// ExecOptions literals keep parallel kernels on by default.
	ParKernelDefault ParKernelMode = iota
	// ParKernelOn forces the parallel kernel paths for the run (they
	// still require Workers > 1 to engage).
	ParKernelOn
	// ParKernelOff forces the sequential operator path for the run.
	ParKernelOff
)
