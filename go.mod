module coverpack

go 1.22
