// Benchmark harness: one benchmark per paper table/figure (see the
// per-experiment index in DESIGN.md), plus ablations for the design
// choices DESIGN.md calls out. Each benchmark drives the same
// implementation as cmd/experiments and reports the experiment's
// headline quantity (measured load, fitted exponent, or bound ratio)
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// paper's numbers alongside the usual time/op.
package coverpack_test

import (
	"testing"

	"coverpack"
	"coverpack/internal/core"
	"coverpack/internal/experiments"
	"coverpack/internal/hypergraph"
	"coverpack/internal/lowerbound"
	"coverpack/internal/mpc"
	"coverpack/internal/workload"
)

var cfg = experiments.Config{Small: true}

// BenchmarkTable1OneRoundAcyclic measures the one-round skew-aware
// HyperCube on the star-dual hard instance (Table 1, acyclic/one-round
// cell: load Õ(N/p^{1/ψ*})).
func BenchmarkTable1OneRoundAcyclic(b *testing.B) {
	q := hypergraph.StarDualJoin(3)
	in := workload.StarDualHard(3, 600, 1)
	b.ReportAllocs()
	var load int
	for i := 0; i < b.N; i++ {
		rep, err := coverpack.Execute(coverpack.AlgSkewAware, in, 16)
		if err != nil {
			b.Fatal(err)
		}
		load = rep.Stats.MaxLoad
	}
	_ = q
	b.ReportMetric(float64(load), "load@p16")
}

// BenchmarkTable1MultiRoundAcyclic measures the paper's algorithm on
// the same instance (Table 1, acyclic/multi-round cell: Õ(N/p^{1/ρ*})).
func BenchmarkTable1MultiRoundAcyclic(b *testing.B) {
	in := workload.StarDualHard(3, 600, 1)
	b.ReportAllocs()
	var load int
	for i := 0; i < b.N; i++ {
		rep, err := coverpack.Execute(coverpack.AlgAcyclicOptimal, in, 16)
		if err != nil {
			b.Fatal(err)
		}
		load = rep.Stats.MaxLoad
	}
	b.ReportMetric(float64(load), "load@p16")
}

// BenchmarkTable1OneRoundCyclic measures vanilla HyperCube on the
// triangle (Table 1, cyclic/one-round cell).
func BenchmarkTable1OneRoundCyclic(b *testing.B) {
	in := coverpack.Matching(hypergraph.TriangleJoin(), 600)
	b.ReportAllocs()
	var load int
	for i := 0; i < b.N; i++ {
		rep, err := coverpack.Execute(coverpack.AlgHyperCube, in, 16)
		if err != nil {
			b.Fatal(err)
		}
		load = rep.Stats.MaxLoad
	}
	b.ReportMetric(float64(load), "load@p16")
}

// BenchmarkTable1LowerBound measures the Q_□ counting argument
// (Table 1, cyclic lower-bound cell, Theorem 6): the reported metric is
// the ratio of the measured minimum load to the packing bound
// N/p^{1/τ*} (≈1 when the bound is exhibited).
func BenchmarkTable1LowerBound(b *testing.B) {
	q := hypergraph.SquareJoin()
	a, err := lowerbound.Analyze(q)
	if err != nil {
		b.Fatal(err)
	}
	in := workload.ProvableHard(q, a.Witness, 1000, 9)
	out := int64(in.Rel(0).Len()) * int64(in.Rel(1).Len())
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := lowerbound.MinLoad(a, in, 64, out)
		ratio = float64(r.MinL) / r.PackingBound
	}
	b.ReportMetric(ratio, "minload/packing-bound")
}

// BenchmarkFigure3Bounds measures the exact-rational computation of
// ρ*, τ*, ψ* across the catalog (Figures 1–3 substrate).
func BenchmarkFigure3Bounds(b *testing.B) {
	entries := hypergraph.Catalog()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			if _, err := coverpack.Analyze(e.Query); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure4ConservativeVsOptimal measures the Example 3.4
// separation on the Figure 4 hard instance; the metric is the load
// ratio conservative/optimal (>1 shows the gap, which grows as
// p^{1/6−1/7} asymptotically).
func BenchmarkFigure4ConservativeVsOptimal(b *testing.B) {
	in := workload.Figure4Hard(4)
	var ratio float64
	for i := 0; i < b.N; i++ {
		rc, err := coverpack.Execute(coverpack.AlgAcyclicConservative, in, 16)
		if err != nil {
			b.Fatal(err)
		}
		ro, err := coverpack.Execute(coverpack.AlgAcyclicOptimal, in, 16)
		if err != nil {
			b.Fatal(err)
		}
		if rc.Emitted != ro.Emitted {
			b.Fatalf("emission mismatch %d vs %d", rc.Emitted, ro.Emitted)
		}
		ratio = float64(rc.Stats.MaxLoad) / float64(ro.Stats.MaxLoad)
	}
	b.ReportMetric(ratio, "cons/opt-load")
}

// BenchmarkFigure6LinearJoin measures the optimal run on the line-3 AGM
// worst case (Figure 6); the metric is the fitted exponent of
// L ≈ N/p^{1/x}, which must land at ρ* = 2.
func BenchmarkFigure6LinearJoin(b *testing.B) {
	in, err := coverpack.AGMWorstCase(hypergraph.Line3Join(), 256)
	if err != nil {
		b.Fatal(err)
	}
	var x float64
	for i := 0; i < b.N; i++ {
		_, fit, err := coverpack.LoadScaling(coverpack.AlgAcyclicOptimal, in, []int{4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		x = fit
	}
	b.ReportMetric(x, "fitted-rho")
}

// BenchmarkTable1MultiRoundCyclic measures the multi-round triangle
// algorithm on the AGM worst case (Table 1, binary-relation
// multi-round cell: Õ(N/p^{1/ρ*}) = Õ(N/p^{2/3})).
func BenchmarkTable1MultiRoundCyclic(b *testing.B) {
	in, err := coverpack.AGMWorstCase(hypergraph.TriangleJoin(), 400)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var load int
	for i := 0; i < b.N; i++ {
		rep, err := coverpack.Execute(coverpack.AlgTriangle, in, 27)
		if err != nil {
			b.Fatal(err)
		}
		load = rep.Stats.MaxLoad
	}
	b.ReportMetric(float64(load), "load@p27")
}

// BenchmarkFigure7DegreeTwo measures the spoke-4 lower bound (Figure 7
// family, Theorem 7); metric as in BenchmarkTable1LowerBound.
func BenchmarkFigure7DegreeTwo(b *testing.B) {
	q := hypergraph.SpokeJoin(4)
	a, err := lowerbound.Analyze(q)
	if err != nil {
		b.Fatal(err)
	}
	in := workload.ProvableHard(q, a.Witness, 2401, 11)
	out := int64(in.Rel(0).Len()) * int64(in.Rel(1).Len())
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := lowerbound.MinLoad(a, in, 64, out)
		ratio = float64(r.MinL) / r.PackingBound
	}
	b.ReportMetric(ratio, "minload/packing-bound")
}

// BenchmarkSection13Gap measures the Section 1.3 one-round vs
// multi-round gap on the semi-join example; the metric is the measured
// load ratio (theory: p^{1/2}/1 at linear multi-round load).
func BenchmarkSection13Gap(b *testing.B) {
	q := hypergraph.SemiJoinExample()
	in := coverpack.HeavyHub(q, 2000)
	var ratio float64
	for i := 0; i < b.N; i++ {
		one, err := coverpack.Execute(coverpack.AlgSkewAware, in, 64)
		if err != nil {
			b.Fatal(err)
		}
		multi, err := coverpack.Execute(coverpack.AlgAcyclicOptimal, in, 64)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(one.Stats.MaxLoad) / float64(multi.Stats.MaxLoad)
	}
	b.ReportMetric(ratio, "one/multi-load")
}

// BenchmarkEMReduction measures the MPC→EM conversion (Section 1.4
// corollary).
func BenchmarkEMReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EMCorollary(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationThreshold sweeps the load threshold L around the
// Section 4.3 choice; the metric is the measured load at 4× the chosen
// L (shows the trade-off between servers and load).
func BenchmarkAblationThreshold(b *testing.B) {
	in, err := coverpack.AGMWorstCase(hypergraph.Line3Join(), 256)
	if err != nil {
		b.Fatal(err)
	}
	base := core.ChooseL(in, 16, core.PathOptimal)
	var load4x int
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(16)
		res, err := core.Run(c.Root(), in, core.Options{Strategy: core.PathOptimal, L: 4 * base})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
		load4x = c.Stats().MaxLoad
	}
	b.ReportMetric(float64(load4x)/float64(base), "load(4L)/L")
}

// BenchmarkAblationSkew compares vanilla HyperCube loads on skew-free
// vs heavy-hub instances of the star join; the metric is the skew
// penalty ratio (the reason the skew-aware variant and the multi-round
// algorithm exist).
func BenchmarkAblationSkew(b *testing.B) {
	q := hypergraph.StarJoin(2)
	flat := coverpack.Matching(q, 1000)
	skewed := coverpack.HeavyHub(q, 1000)
	var ratio float64
	for i := 0; i < b.N; i++ {
		rf, err := coverpack.Execute(coverpack.AlgHyperCube, flat, 16)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := coverpack.Execute(coverpack.AlgHyperCube, skewed, 16)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(rs.Stats.MaxLoad) / float64(rf.Stats.MaxLoad)
	}
	b.ReportMetric(ratio, "skew-penalty")
}

// BenchmarkAblationShares compares LP-optimized shares against uniform
// shares for the triangle (why the share LP matters).
func BenchmarkAblationShares(b *testing.B) {
	in := coverpack.Matching(hypergraph.TriangleJoin(), 1000)
	var lpLoad int
	for i := 0; i < b.N; i++ {
		rep, err := coverpack.Execute(coverpack.AlgHyperCube, in, 64)
		if err != nil {
			b.Fatal(err)
		}
		lpLoad = rep.Stats.MaxLoad
	}
	// Theory: LP shares give N/p^{2/3} = 63; a uniform 1D hash would
	// pay N/p^{1/2}-ish. Report absolute load.
	b.ReportMetric(float64(lpLoad), "load@p64")
}

// BenchmarkSimulatorExchange measures the raw simulator exchange
// throughput (tuples routed per second) as the substrate baseline.
func BenchmarkSimulatorExchange(b *testing.B) {
	in := coverpack.Uniform(hypergraph.Line3Join(), 10000, 100000, 1)
	c := mpc.NewCluster(16)
	g := c.Root()
	d := g.Scatter(in.Rel(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = g.HashPartition(d, []int{in.Query.AttrID("X1")})
	}
	b.SetBytes(int64(in.Rel(0).Len() * 16))
}

// BenchmarkTable1MultiRoundLW measures the Loomis-Whitney multi-round
// algorithm on LW_4's AGM worst case (the other family of Table 1's
// multi-round cell; ρ* = 4/3).
func BenchmarkTable1MultiRoundLW(b *testing.B) {
	in, err := coverpack.AGMWorstCase(hypergraph.LoomisWhitneyJoin(4), 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var load int
	for i := 0; i < b.N; i++ {
		rep, err := coverpack.Execute(coverpack.AlgLoomisWhitney, in, 16)
		if err != nil {
			b.Fatal(err)
		}
		load = rep.Stats.MaxLoad
	}
	b.ReportMetric(float64(load), "load@p16")
}
