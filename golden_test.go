package coverpack_test

import (
	"testing"

	"coverpack"
)

// TestGoldenHeadlineNumbers pins the exact measured values of the
// headline experiments. Everything in this repository is deterministic
// (seeded PRNGs, sorted iteration, fixed hash functions), so these are
// stable regression anchors: a change here means an algorithm's
// communication pattern changed, which should be a conscious decision.
func TestGoldenHeadlineNumbers(t *testing.T) {
	q := coverpack.MustParseQuery("line3", "R1(A,B) R2(B,C) R3(C,D)")
	in, err := coverpack.AGMWorstCase(q, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// The Table 1 headline: the optimal run's load equals N/√p exactly
	// at every measured p on the line-3 AGM worst case.
	for _, tc := range []struct {
		p    int
		load int
	}{
		{4, 512},
		{16, 256},
		{64, 128},
	} {
		rep, err := coverpack.Execute(coverpack.AlgAcyclicOptimal, in, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Emitted != 1024*1024 {
			t.Fatalf("p=%d: emitted %d, want 1048576", tc.p, rep.Emitted)
		}
		if rep.Stats.MaxLoad != tc.load {
			t.Errorf("p=%d: load %d, want exactly %d (N/√p)", tc.p, rep.Stats.MaxLoad, tc.load)
		}
	}
}

// TestGoldenLowerBound pins the Theorem 6 measurement at one (n, p)
// point: the measured minimum feasible load on the seeded Q_□ hard
// instance.
func TestGoldenLowerBound(t *testing.T) {
	q := coverpack.MustParseQuery("square",
		"R1(A,B,C) R2(D,E,F) R3(A,D) R4(B,E) R5(C,F)")
	rep, err := coverpack.LowerBound(q, 1728, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Bounds are analytic and exact; the measured MinLoad is pinned to
	// the value produced by the seeded instance + deterministic search.
	if rep.PackingBound < 431.999 || rep.PackingBound > 432.001 {
		t.Fatalf("packing bound %v, want 432", rep.PackingBound)
	}
	if rep.CoverBound < 215.999 || rep.CoverBound > 216.001 {
		t.Fatalf("cover bound %v, want 216", rep.CoverBound)
	}
	if float64(rep.MinLoad) < rep.CoverBound || float64(rep.MinLoad) > 1.5*rep.PackingBound {
		t.Fatalf("min load %d outside [cover, 1.5·packing] = [216, 648]", rep.MinLoad)
	}
}
