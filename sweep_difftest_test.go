package coverpack_test

import (
	"fmt"
	"reflect"
	"testing"

	"coverpack"
	"coverpack/internal/experiments"
)

// The run-level determinism oracle: the sweep scheduler executes
// experiment cells concurrently, and the memory pools recycle arenas
// across those runs — neither may change a single byte of any table.
// The reference is the sequential, pooling-off, streaming-off sweep
// (the pre-scheduler, fully materialized code path); every
// (run-workers × pooling × streaming) arm must render the exact same
// tables.

// renderTables flattens tables into one comparable byte string.
func renderTables(tables []experiments.Table) string {
	s := ""
	for _, t := range tables {
		s += t.Title + "\n"
		s += fmt.Sprintf("%q\n", t.Header)
		for _, r := range t.Rows {
			s += fmt.Sprintf("%q\n", r)
		}
	}
	return s
}

// sweepOnce runs the scheduled sweep subset under one configuration:
// the full Table 1 plus one figure sweep (Figure 6) — together they
// cover ExecuteOpts cells, MinLoad cells, and exponent-fit assembly.
func sweepOnce(t *testing.T, runWorkers int, pool, stream bool) string {
	t.Helper()
	coverpack.SetPooling(pool)
	defer coverpack.SetPooling(true)
	coverpack.SetStreaming(stream)
	defer coverpack.SetStreaming(true)
	cfg := experiments.Config{Small: true, RunWorkers: runWorkers}
	tables, err := experiments.Table1(cfg)
	if err != nil {
		t.Fatalf("table1 (runWorkers=%d pool=%v): %v", runWorkers, pool, err)
	}
	fig, err := experiments.Figure6(cfg)
	if err != nil {
		t.Fatalf("figure6 (runWorkers=%d pool=%v): %v", runWorkers, pool, err)
	}
	return renderTables(append(tables, fig))
}

func TestScheduledSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep matrix skipped in -short mode")
	}
	ref := sweepOnce(t, 1, false, false)
	for _, rw := range []int{1, 4, 8} {
		for _, pool := range []bool{false, true} {
			for _, stream := range []bool{false, true} {
				got := sweepOnce(t, rw, pool, stream)
				if got != ref {
					t.Errorf("runWorkers=%d pool=%v stream=%v: rendered tables diverged from sequential pool-off stream-off reference\nref:\n%s\ngot:\n%s",
						rw, pool, stream, ref, got)
				}
			}
		}
	}
}

// TestScheduledSweepBudgetIdentical pins that the admission gate only
// delays cells, never changes results: a budget small enough to force
// serialization and an unlimited budget render identical tables.
func TestScheduledSweepBudgetIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep matrix skipped in -short mode")
	}
	run := func(budget int64) []experiments.Table {
		t.Helper()
		tables, err := experiments.Table1(experiments.Config{Small: true, RunWorkers: 4, MemBudget: budget})
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		return tables
	}
	tight, unlimited := run(1), run(-1)
	if !reflect.DeepEqual(tight, unlimited) {
		t.Errorf("tables differ between tight and unlimited admission budgets")
	}
}
